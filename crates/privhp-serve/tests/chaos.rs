//! Chaos tests: a real server with deterministic fault injection armed,
//! driven over real sockets by retrying clients.
//!
//! The contract under test is the robustness half of the serving stack:
//! with `--fault-seed` armed the transport tears, trickles, delays and
//! resets — yet every seeded request either returns **bit-identical**
//! bytes to a fault-free run (after retries) or a structured,
//! correctly-classified error; no worker dies; and the disposition
//! accounting identity `connections == served + shed + timed_out +
//! idle_closed + io_error + open` holds exactly once traffic quiesces.

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::rng_from_seed;
use privhp_serve::{
    code_is_retryable, oneshot_with, Client, FaultPlan, LoadedRelease, Registry, RetryPolicy,
    Server, ServerConfig,
};
use serde::Value;

/// The armed seed: the fault unit tests prove this seed's schedule covers
/// all six [`privhp_serve::FaultKind`]s within 64 connections.
const CHAOS_SEED: u64 = 7;

fn tiny_release(seed: u64) -> ReleaseFile {
    let data: Vec<f64> =
        (0..512).map(|i| ((i as f64 / 512.0).powi(2) * 0.999).min(0.999)).collect();
    let mut rng = rng_from_seed(seed);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(seed);
    let g = PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).unwrap();
    ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone())
}

/// Boots a server under an explicit config on an ephemeral port.
fn start_with(
    config: ServerConfig,
    releases: Vec<(&str, ReleaseFile)>,
) -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let registry = Registry::new();
    for (name, release) in releases {
        registry.insert(LoadedRelease::from_release(name, release));
    }
    let server =
        Arc::new(Server::bind_with("127.0.0.1:0", registry, config).expect("bind ephemeral port"));
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run());
    (server, addr, handle)
}

/// The retry policy the chaos runs use: enough attempts to ride out any
/// streak the 8-slot schedule can produce, short per-attempt deadline.
fn retrying() -> RetryPolicy {
    RetryPolicy { retries: 12, timeout: Duration::from_secs(5), ..RetryPolicy::default() }
}

/// Asserts the disposition accounting identity at a quiet instant.
fn assert_identity(server: &Server) {
    let s = server.stats();
    assert_eq!(
        s.connections(),
        s.served() + s.shed() + s.timed_out() + s.idle_closed() + s.io_error() + s.open(),
        "accounting identity broken: connections={} served={} shed={} timed_out={} \
         idle_closed={} io_error={} open={}",
        s.connections(),
        s.served(),
        s.shed(),
        s.timed_out(),
        s.idle_closed(),
        s.io_error(),
        s.open(),
    );
}

fn parse(line: &str) -> Value {
    serde_json::parse_value_str(line).unwrap_or_else(|e| panic!("unparseable frame '{line}': {e}"))
}

#[test]
fn retrying_clients_get_fault_free_bytes_through_every_fault_kind() {
    let release = tiny_release(3);
    let req = "{\"op\":\"sample\",\"release\":\"demo\",\"n\":64,\"seed\":9}";

    // Fault-free baseline: the canonical JSON line and binary frame.
    let (clean, addr, handle) = start_with(
        ServerConfig { workers: 4, queue_depth: 16, ..ServerConfig::default() },
        vec![("demo", tiny_release(3))],
    );
    let baseline_json = oneshot_with(&addr, req, retrying()).unwrap();
    let mut c = Client::connect_with(&addr, retrying()).unwrap();
    c.set_binary().unwrap();
    let (baseline_header, baseline_lanes) = c.request_expect_payload(req).unwrap();
    let baseline_lanes = baseline_lanes.expect("binary sample carries a payload");
    drop(c);
    clean.request_shutdown();
    handle.join().unwrap();

    // The same traffic through an armed server must converge to the same
    // bytes on every single request.
    let (server, addr, handle) = start_with(
        ServerConfig {
            workers: 4,
            queue_depth: 16,
            fault_seed: Some(CHAOS_SEED),
            ..ServerConfig::default()
        },
        vec![("demo", release)],
    );

    // JSON path: fresh connection per request marches through the fault
    // schedule (torn writes, trickle, resets, header tears, delays).
    for i in 0..24 {
        let line = oneshot_with(&addr, req, retrying())
            .unwrap_or_else(|e| panic!("request {i} exhausted retries: {e}"));
        assert_eq!(line, baseline_json, "request {i} returned different bytes under faults");
    }

    // Binary path: a persistent client re-negotiates the encoding after
    // every fault-forced reconnect; payload tears land mid-`f64`.
    let mut c = Client::connect_with(&addr, retrying()).unwrap();
    c.set_binary().unwrap();
    for i in 0..24 {
        let (header, lanes) = c
            .request_expect_payload(req)
            .unwrap_or_else(|e| panic!("binary request {i} exhausted retries: {e}"));
        assert_eq!(header, baseline_header, "binary header {i} differs under faults");
        let lanes = lanes.expect("binary sample carries a payload");
        assert_eq!(lanes.len(), baseline_lanes.len(), "payload {i} length differs");
        for (a, b) in lanes.iter().zip(&baseline_lanes) {
            assert_eq!(a.to_bits(), b.to_bits(), "payload {i} bytes differ under faults");
        }
    }
    drop(c);

    // Push the connection count past 64 so the seed-7 coverage guarantee
    // (every fault kind appears) applies to this run's index range.
    while server.stats().connections() < 64 {
        let _ = oneshot_with(&addr, "{\"op\":\"list\"}", retrying());
    }

    let total = server.stats().connections();
    let mut kinds = Vec::new();
    for idx in 0..total {
        if let Some(plan) = FaultPlan::derive(CHAOS_SEED, idx) {
            let kind = plan.kind();
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
    }
    assert_eq!(kinds.len(), 6, "all six fault kinds must be scheduled in-range: {kinds:?}");

    server.request_shutdown();
    handle.join().expect("no worker died under chaos");

    let s = server.stats();
    assert!(s.served() > 0, "some requests served");
    assert!(s.io_error() > 0, "fatal faults (tears/resets) settled as io_error");
    assert_identity(&server);
}

#[test]
fn idle_connections_are_dropped_with_a_structured_frame() {
    let (server, addr, handle) = start_with(
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            idle_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
        vec![("r", tiny_release(2))],
    );

    // A connection that sends a partial line and stalls: the partial
    // bytes must NOT reset the idle clock (that's the slow-loris hole).
    let mut loris = std::net::TcpStream::connect(&addr).unwrap();
    loris.write_all(b"{\"op\"").unwrap();
    loris.flush().unwrap();
    // A connection that sends nothing at all.
    let silent = std::net::TcpStream::connect(&addr).unwrap();

    for stream in [loris, silent] {
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let v = parse(line.trim_end());
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{line}");
        assert_eq!(v.get("code").and_then(Value::as_str), Some("idle_timeout"), "{line}");
        assert_eq!(v.get("timeout_ms").and_then(Value::as_u64), Some(200), "{line}");
        assert!(code_is_retryable("idle_timeout"), "idle drops must invite a reconnect");
    }

    // Both drops freed their workers: the pool still answers.
    let line = oneshot_with(&addr, "{\"op\":\"list\"}", retrying()).unwrap();
    assert_eq!(parse(&line).get("ok").and_then(Value::as_bool), Some(true));

    server.request_shutdown();
    handle.join().unwrap();
    assert_eq!(server.stats().idle_closed(), 2, "both idle drops accounted");
    assert_identity(&server);
}

#[test]
fn requests_over_budget_get_a_request_timeout_frame() {
    let (server, addr, handle) = start_with(
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            max_sample_n: 1_000_000,
            request_timeout: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        },
        vec![("r", tiny_release(4))],
    );

    // Sampling and JSON-rendering 400k points blows a 1ms budget on any
    // hardware; the worker must answer the structured overrun and close.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(b"{\"op\":\"sample\",\"release\":\"r\",\"n\":400000,\"seed\":1}\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parse(line.trim_end());
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{line}");
    assert_eq!(v.get("code").and_then(Value::as_str), Some("request_timeout"), "{line}");
    assert_eq!(v.get("timeout_ms").and_then(Value::as_u64), Some(1), "{line}");
    assert!(code_is_retryable("request_timeout"));
    // The server closes after the overrun frame.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0, "connection closed after overrun");

    server.request_shutdown();
    handle.join().unwrap();
    assert_eq!(server.stats().timed_out(), 1);
    assert_identity(&server);
}

#[test]
fn corrupt_load_leaves_the_previous_release_serving() {
    let (server, addr, handle) = start_with(
        ServerConfig { workers: 2, queue_depth: 8, ..ServerConfig::default() },
        vec![("r", tiny_release(6))],
    );
    let req = "{\"op\":\"sample\",\"release\":\"r\",\"n\":32,\"seed\":5}";
    let before = oneshot_with(&addr, req, retrying()).unwrap();

    // A crash mid-write leaves a torn release file; a `load` replacing
    // the live name must reject it during staging and swap nothing.
    let path = std::env::temp_dir().join(format!("privhp_chaos_torn_{}.json", std::process::id()));
    let full = tiny_release(7).to_json();
    std::fs::write(&path, &full.as_bytes()[..full.len() / 2]).unwrap();
    let load =
        format!("{{\"op\":\"load\",\"name\":\"r\",\"path\":{:?}}}", path.display().to_string());
    let reply = oneshot_with(&addr, &load, retrying()).unwrap();
    let v = parse(&reply);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "torn load must fail: {reply}");
    assert_eq!(v.get("code").and_then(Value::as_str), Some("bad_request"), "{reply}");

    // The previous release still serves, bit-identically.
    let after = oneshot_with(&addr, req, retrying()).unwrap();
    assert_eq!(before, after, "a failed load must not disturb the serving release");
    let _ = std::fs::remove_file(&path);

    server.request_shutdown();
    handle.join().unwrap();
    assert_identity(&server);
}

#[test]
fn snapshot_records_loads_and_survives_a_restart() {
    let dir = std::env::temp_dir().join(format!("privhp_chaos_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let release_path = dir.join("rel.json");
    let snap_path = dir.join("registry.snapshot.json");
    let release = tiny_release(8);
    std::fs::write(&release_path, release.to_json()).unwrap();

    let (server, addr, handle) = start_with(
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            snapshot_path: Some(snap_path.display().to_string()),
            ..ServerConfig::default()
        },
        vec![],
    );
    let load = format!(
        "{{\"op\":\"load\",\"name\":\"snapped\",\"path\":{:?}}}",
        release_path.display().to_string()
    );
    let reply = oneshot_with(&addr, &load, retrying()).unwrap();
    let v = parse(&reply);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");
    assert!(v.get("snapshot").and_then(Value::as_str).is_some(), "load reports the snapshot");
    server.request_shutdown();
    handle.join().unwrap();

    // "Restart": a fresh registry restored from the snapshot serves the
    // exact same release.
    let restored = Registry::new();
    let outcome = restored.restore_snapshot(&snap_path.display().to_string()).unwrap();
    assert_eq!(outcome.restored, 1);
    assert!(outcome.skipped.is_empty());
    let rel = restored.get("snapped").unwrap();
    assert_eq!(rel.release().to_json(), release.to_json(), "restored release bytes differ");

    let _ = std::fs::remove_dir_all(&dir);
}
