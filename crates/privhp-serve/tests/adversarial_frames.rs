//! Adversarial frame parsing: fuzz-shaped property tests feeding the
//! client's frame classifier, the request parser, and the binary payload
//! reader malformed, truncated, and oversized inputs.
//!
//! The contract: none of these entry points may panic on hostile bytes,
//! and classification must be **conservative** — a frame the client
//! can't positively identify as a known-retryable error is terminal, so
//! garbage can never talk a retry loop into hammering a server.

use privhp_serve::client::frame_error;
use privhp_serve::protocol::{parse_request, read_binary_payload, write_binary_payload};
use privhp_serve::{code_is_retryable, ClientError};
use proptest::prelude::*;

/// The codes the wire contract marks retryable; anything else — present,
/// absent, or invented by an attacker — must classify terminal.
const RETRYABLE: [&str; 4] = ["busy", "request_timeout", "idle_timeout", "unavailable"];

/// Asserts the conservative classification invariant on one line.
fn classify_conservatively(line: &str) -> Result<(), proptest::TestCaseError> {
    match frame_error(line) {
        None => {} // success frame or unparseable: handled upstream
        Some(err) => {
            let ClientError::Server { code, .. } = &err else {
                prop_assert!(false, "frame_error invented a non-server error: {:?}", err);
                unreachable!()
            };
            let known_retryable = code.as_deref().map(|c| RETRYABLE.contains(&c)).unwrap_or(false);
            prop_assert!(
                err.is_retryable() == known_retryable,
                "code {:?} classified non-conservatively from '{}'",
                code,
                line
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossy-decoded, like a hostile peer's line) never
    /// panic the classifier or the request parser, and never classify
    /// retryable.
    #[test]
    fn random_bytes_never_panic_and_never_retry(bytes in proptest::collection::vec(0u64..256, 0..160)) {
        let line_bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let line = String::from_utf8_lossy(&line_bytes).into_owned();
        classify_conservatively(&line)?;
        // Random bytes essentially never spell a retryable code; what
        // matters is that parse errors are Err, not panics.
        let _ = parse_request(&line);
    }

    /// Truncating a *valid* error frame at every byte boundary degrades
    /// to terminal (or no) classification — never to a retryable one the
    /// full frame didn't have.
    #[test]
    fn truncated_frames_classify_conservatively(cut in 0u64..120, which in 0u64..8) {
        let frames = [
            r#"{"ok":false,"error":"shed","code":"busy","retryable":true}"#,
            r#"{"ok":false,"error":"deadline","code":"request_timeout","retryable":true}"#,
            r#"{"ok":false,"error":"down","code":"unavailable","release":"r","retryable":true}"#,
            r#"{"ok":false,"error":"bad","code":"bad_request","retryable":false}"#,
            r#"{"ok":false,"error":"nope","code":"unknown_release","retryable":false}"#,
            r#"{"ok":false,"error":"weird","code":"never_heard_of_it","retryable":true}"#,
            r#"{"ok":false,"error":"no code at all"}"#,
            r#"{"ok":true,"op":"list","releases":[]}"#,
        ];
        let frame = frames[(which as usize) % frames.len()];
        let cut = (cut as usize).min(frame.len());
        let truncated = &frame[..cut];
        classify_conservatively(truncated)?;
        let _ = parse_request(truncated);
    }

    /// The binary payload reader survives arbitrary prefixes and bodies:
    /// short reads, non-multiple-of-8 lengths, and absurd length claims
    /// all come back as `Err`, never a panic or a giant allocation.
    #[test]
    fn hostile_binary_payloads_error_cleanly(
        claimed in 0u64..u64::MAX,
        body in proptest::collection::vec(0u64..256, 0..64),
    ) {
        let mut wire = claimed.to_le_bytes().to_vec();
        wire.extend(body.iter().map(|&b| b as u8));
        let mut r = wire.as_slice();
        match read_binary_payload(&mut r) {
            Ok(lanes) => {
                // Only possible when the claim is honest: a whole number
                // of f64s, all present in the body.
                prop_assert_eq!(claimed % 8, 0);
                prop_assert_eq!(lanes.len() as u64, claimed / 8);
            }
            Err(e) => prop_assert!(!e.is_empty(), "error must say what broke"),
        }
    }

    /// Round-trip sanity alongside the hostile cases: what the writer
    /// produces, the reader accepts bit-for-bit.
    #[test]
    fn written_payloads_read_back(lanes in proptest::collection::vec(0.0f64..1.0, 0..48)) {
        let mut wire = Vec::new();
        write_binary_payload(&mut wire, &lanes).unwrap();
        let mut r = wire.as_slice();
        let back = read_binary_payload(&mut r).unwrap();
        prop_assert_eq!(back, lanes);
    }
}

#[test]
fn retryable_table_matches_the_wire_contract() {
    for code in RETRYABLE {
        assert!(code_is_retryable(code), "'{code}' must be retryable");
    }
    for code in ["bad_request", "unknown_release", "sample_cap", "internal", "made_up"] {
        assert!(!code_is_retryable(code), "'{code}' must be terminal");
    }
}
