#![warn(missing_docs)]

//! **privhp-serve** — the serving layer over ε-DP releases: a long-lived
//! sampling/query server speaking line-delimited JSON over TCP.
//!
//! A release file is already private (post-processing, paper Lemma 2), so
//! a server holding releases in memory can answer unlimited sample and
//! query traffic with **zero further privacy cost** — this crate is the
//! "millions of users" half of the workspace: build once with the CLI or
//! the streaming builder, then serve forever.
//!
//! Architecture:
//!
//! * [`registry`] — named [`registry::LoadedRelease`]s behind a read-write
//!   lock; each owns a parsed [`privhp_core::ReleaseFile`] and answers ops
//!   through the [`privhp_core::Generator`] trait. Releases are immutable
//!   after load, so all request handling is lock-free once the handler has
//!   cloned its `Arc` out of the map;
//! * [`protocol`] — the frame format: requests `sample` / `query` / `cdf`
//!   / `info` / `list` / `stats` / `load` / `format` / `shutdown`, one
//!   JSON object per line each way, malformed frames answered with
//!   structured errors, plus the negotiated binary bulk-sample frame (a
//!   JSON header line followed by a length-prefixed little-endian `f64`
//!   payload);
//! * [`server`] — the accept loop feeding a bounded worker pool through a
//!   bounded connection queue (std-only, like the bench runner); when the
//!   queue is full newcomers are shed with a structured `busy` frame
//!   instead of blocking accept or spawning unboundedly. Shared atomic
//!   counters, graceful shutdown via flag + listener wake-up;
//! * [`stats`] — relaxed atomic request/error/points/shed counters and a
//!   log-spaced request-latency histogram with a quantile estimator,
//!   served by the `stats` op;
//! * [`client`] — the blocking one-line-in, one-line-out client the
//!   `privhp client` subcommand, the CI smoke pipeline and the
//!   `exp_serve` load generator use; it negotiates and decodes the
//!   binary sample frame, and reconnects/retries retryable failures
//!   (transport errors, deadlines, `busy`-class frames) under a
//!   seeded-jitter exponential backoff — safe because seeded requests
//!   are idempotent;
//! * [`fault`] — deterministic fault injection for chaos testing: armed
//!   by `--fault-seed` / `PRIVHP_FAULT_SEED`, each connection derives a
//!   reproducible schedule of torn writes, truncated frames/payloads,
//!   byte trickle, delayed reads and resets; zero-cost when off;
//! * [`cluster`] — client-side replicated sharding: a
//!   [`cluster::ClusterClient`] rendezvous-hashes each release name over
//!   N endpoints with replication factor R (default 2), fails over
//!   between replicas behind per-endpoint circuit breakers, and merges
//!   fleet-wide `stats` with breaker states — no coordinator process.
//!
//! Robustness contract: the server bounds every resource a hostile
//! client could pin (worker pool, queue, request line length, idle and
//! per-request wall clocks) and settles every accepted connection into
//! exactly one `stats` disposition (`served` / `shed` / `timed_out` /
//! `idle_closed` / `io_error`), so `connections == served + shed +
//! timed_out + idle_closed + io_error + open` holds at any quiet
//! instant. Hot `load`s stage fully before an atomic registry swap, and
//! an optional registry snapshot file survives restarts. At the fleet
//! level the same contract extends across processes: a replicated
//! cluster keeps answering bit-identically while any one replica of a
//! release is alive, and settles with a structured retryable
//! `unavailable` error when none is.
//!
//! Determinism: `sample` responses are a pure function of `(release
//! bytes, n, seed)` — the per-request seed is whitened exactly as the
//! CLI's `sample` subcommand whitens its `--seed`, so a served draw, a CLI
//! draw, and an in-process [`privhp_core::ReleaseFile::generator`] draw at
//! equal seeds are the same points. Repeating a request is byte-identical;
//! no server state leaks into responses.

pub mod client;
pub mod cluster;
pub mod fault;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;

pub use client::{oneshot, oneshot_with, Client, ClientError, RetryPolicy};
pub use cluster::{owners, rendezvous_score, BreakerState, ClusterClient, DEFAULT_REPLICATION};
pub use fault::{FaultKind, FaultPlan};
pub use protocol::{code_is_retryable, parse_request, Probe, Request};
pub use registry::{LoadedRelease, Registry, SnapshotRestore};
pub use server::{Server, ServerConfig};
pub use stats::{Disposition, LatencyHistogram, ServerStats};
