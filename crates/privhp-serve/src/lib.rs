#![warn(missing_docs)]

//! **privhp-serve** — the serving layer over ε-DP releases: a long-lived
//! sampling/query server speaking line-delimited JSON over TCP.
//!
//! A release file is already private (post-processing, paper Lemma 2), so
//! a server holding releases in memory can answer unlimited sample and
//! query traffic with **zero further privacy cost** — this crate is the
//! "millions of users" half of the workspace: build once with the CLI or
//! the streaming builder, then serve forever.
//!
//! Architecture:
//!
//! * [`registry`] — named [`registry::LoadedRelease`]s behind a read-write
//!   lock; each owns a parsed [`privhp_core::ReleaseFile`] and answers ops
//!   through the [`privhp_core::Generator`] trait. Releases are immutable
//!   after load, so all request handling is lock-free once the handler has
//!   cloned its `Arc` out of the map;
//! * [`protocol`] — the frame format: requests `sample` / `query` / `cdf`
//!   / `info` / `list` / `stats` / `load` / `shutdown`, one JSON object
//!   per line each way, malformed frames answered with structured errors;
//! * [`server`] — the accept loop: one scoped thread per connection
//!   (std-only, like the bench runner), shared atomic counters, graceful
//!   shutdown via flag + listener wake-up;
//! * [`stats`] — relaxed atomic request/error/points counters and a
//!   request-latency histogram, served by the `stats` op;
//! * [`client`] — the blocking one-line-in, one-line-out client the
//!   `privhp client` subcommand and the CI smoke pipeline use.
//!
//! Determinism: `sample` responses are a pure function of `(release
//! bytes, n, seed)` — the per-request seed is whitened exactly as the
//! CLI's `sample` subcommand whitens its `--seed`, so a served draw, a CLI
//! draw, and an in-process [`privhp_core::ReleaseFile::generator`] draw at
//! equal seeds are the same points. Repeating a request is byte-identical;
//! no server state leaks into responses.

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;

pub use client::{oneshot, Client};
pub use protocol::{parse_request, Probe, Request};
pub use registry::{LoadedRelease, Registry};
pub use server::Server;
pub use stats::ServerStats;
