//! The wire protocol: one JSON object per line, in both directions.
//!
//! Every request names an operation in its `op` field; every response is a
//! single-line JSON object whose `ok` field says whether the request
//! succeeded. Successful responses echo the `op` and carry op-specific
//! payload fields; failures carry a human-readable `error` string. A frame
//! that fails to parse, names an unknown op, or is missing fields is
//! answered with an error frame — the connection (and the listener) stay
//! up, so one bad client request can never take the server down.
//!
//! Requests:
//!
//! ```text
//! {"op":"sample","release":NAME,"n":N,"seed":S}
//! {"op":"query","release":NAME,"range":[A,B] | "point":X | "quantile":Q | "mean":true}
//! {"op":"cdf","release":NAME,"x":X}
//! {"op":"info","release":NAME}
//! {"op":"list"}
//! {"op":"stats"}
//! {"op":"load","name":NAME,"path":PATH}
//! {"op":"shutdown"}
//! ```

use serde::Value;

/// Hard cap on `sample` batch size per request; larger draws should be
/// split across requests (each carries its own seed, so pagination is
/// deterministic anyway).
pub const MAX_SAMPLE_N: usize = 1_000_000;

/// Closed-form probes supported by the `query` op (interval releases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// `P[a <= X < b]`.
    Range(f64, f64),
    /// The release leaf cell containing a point, and its mass.
    Point(f64),
    /// Quantile at a rank.
    Quantile(f64),
    /// Mean of the release distribution.
    Mean,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Draw `n` deterministic synthetic points from a named release.
    Sample {
        /// Release name in the registry.
        release: String,
        /// Number of points.
        n: usize,
        /// Sampling seed (equal seeds give byte-identical responses).
        seed: u64,
    },
    /// A closed-form probe against a 1-D release.
    Query {
        /// Release name in the registry.
        release: String,
        /// Which probe.
        probe: Probe,
    },
    /// CDF of a 1-D release at a point.
    Cdf {
        /// Release name in the registry.
        release: String,
        /// Evaluation point (clamped to `[0,1]`).
        x: f64,
    },
    /// Metadata of one release.
    Info {
        /// Release name in the registry.
        release: String,
    },
    /// Summaries of every loaded release.
    List,
    /// Server request/latency counters.
    Stats,
    /// Hot-load a release file into the registry.
    Load {
        /// Name to register the release under (replaces an existing one).
        name: String,
        /// Path to the release JSON on the server's filesystem.
        path: String,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// Every op name, in a fixed order ([`ServerStats`] counts per index).
///
/// [`ServerStats`]: crate::stats::ServerStats
pub const OPS: [&str; 8] = ["sample", "query", "cdf", "info", "list", "stats", "load", "shutdown"];

impl Request {
    /// The request's op name (an entry of [`OPS`]).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Sample { .. } => "sample",
            Request::Query { .. } => "query",
            Request::Cdf { .. } => "cdf",
            Request::Info { .. } => "info",
            Request::List => "list",
            Request::Stats => "stats",
            Request::Load { .. } => "load",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Index of an op name in [`OPS`].
pub fn op_index(op: &str) -> Option<usize> {
    OPS.iter().position(|&o| o == op)
}

fn str_field(v: &Value, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{name}'"))
}

fn u64_field(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing non-negative integer field '{name}'"))
}

fn f64_field(v: &Value, name: &str) -> Result<f64, String> {
    v.get(name).and_then(Value::as_f64).ok_or_else(|| format!("missing number field '{name}'"))
}

/// Parses one request line. Errors are client-facing messages.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = serde_json::parse_value_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(v, Value::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let op = v.get("op").and_then(Value::as_str).ok_or("missing string field 'op'")?;
    match op {
        "sample" => {
            let n = u64_field(&v, "n")? as usize;
            if n > MAX_SAMPLE_N {
                return Err(format!("n={n} exceeds the per-request cap {MAX_SAMPLE_N}"));
            }
            Ok(Request::Sample {
                release: str_field(&v, "release")?,
                n,
                seed: u64_field(&v, "seed")?,
            })
        }
        "query" => {
            let release = str_field(&v, "release")?;
            let probe = if let Some(r) = v.get("range") {
                let pair = r.as_array().filter(|a| a.len() == 2).ok_or("'range' must be [a,b]")?;
                let a = pair[0].as_f64().ok_or("'range' endpoints must be numbers")?;
                let b = pair[1].as_f64().ok_or("'range' endpoints must be numbers")?;
                Probe::Range(a, b)
            } else if v.get("point").is_some() {
                Probe::Point(f64_field(&v, "point")?)
            } else if v.get("quantile").is_some() {
                Probe::Quantile(f64_field(&v, "quantile")?)
            } else if v.get("mean").is_some() {
                Probe::Mean
            } else {
                return Err(
                    "query needs one of 'range':[a,b] | 'point':x | 'quantile':q | 'mean':true"
                        .into(),
                );
            };
            Ok(Request::Query { release, probe })
        }
        "cdf" => Ok(Request::Cdf { release: str_field(&v, "release")?, x: f64_field(&v, "x")? }),
        "info" => Ok(Request::Info { release: str_field(&v, "release")? }),
        "list" => Ok(Request::List),
        "stats" => Ok(Request::Stats),
        "load" => Ok(Request::Load { name: str_field(&v, "name")?, path: str_field(&v, "path")? }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}' (expected one of {})", OPS.join(" | "))),
    }
}

/// Builds a one-line success frame: `{"ok":true,"op":...,<fields>}`.
pub fn ok_frame(op: &str, fields: Vec<(&str, Value)>) -> String {
    let mut obj =
        vec![("ok".to_string(), Value::Bool(true)), ("op".to_string(), Value::String(op.into()))];
    obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    frame(Value::Object(obj))
}

/// Builds a one-line error frame: `{"ok":false,"error":...}`.
pub fn error_frame(message: &str) -> String {
    frame(Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::String(message.into())),
    ]))
}

/// Serialises a value compactly — the compact writer emits no raw
/// newlines and escapes them inside strings, so a frame is always exactly
/// one line. `value_to_string` serialises the tree in place (no clone —
/// a 1M-point sample response is a large tree).
fn frame(v: Value) -> String {
    serde_json::value_to_string(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            ("{\"op\":\"sample\",\"release\":\"r\",\"n\":5,\"seed\":7}", "sample"),
            ("{\"op\":\"query\",\"release\":\"r\",\"range\":[0.1,0.4]}", "query"),
            ("{\"op\":\"query\",\"release\":\"r\",\"point\":0.3}", "query"),
            ("{\"op\":\"query\",\"release\":\"r\",\"quantile\":0.5}", "query"),
            ("{\"op\":\"query\",\"release\":\"r\",\"mean\":true}", "query"),
            ("{\"op\":\"cdf\",\"release\":\"r\",\"x\":0.5}", "cdf"),
            ("{\"op\":\"info\",\"release\":\"r\"}", "info"),
            ("{\"op\":\"list\"}", "list"),
            ("{\"op\":\"stats\"}", "stats"),
            ("{\"op\":\"load\",\"name\":\"n\",\"path\":\"/tmp/r.json\"}", "load"),
            ("{\"op\":\"shutdown\"}", "shutdown"),
        ];
        for (line, op) in cases {
            let req = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(req.op(), op, "{line}");
            assert!(op_index(req.op()).is_some());
        }
    }

    #[test]
    fn rejects_malformed_frames_with_messages() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("42", "JSON object"),
            ("{}", "'op'"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"sample\",\"release\":\"r\"}", "'n'"),
            ("{\"op\":\"sample\",\"release\":\"r\",\"n\":1}", "'seed'"),
            ("{\"op\":\"sample\",\"n\":1,\"seed\":1}", "'release'"),
            ("{\"op\":\"query\",\"release\":\"r\"}", "one of"),
            ("{\"op\":\"query\",\"release\":\"r\",\"range\":[0.1]}", "[a,b]"),
            ("{\"op\":\"cdf\",\"release\":\"r\"}", "'x'"),
            ("{\"op\":\"load\",\"name\":\"n\"}", "'path'"),
        ] {
            let e = parse_request(line).unwrap_err();
            assert!(e.contains(needle), "{line}: expected '{needle}' in '{e}'");
        }
    }

    #[test]
    fn sample_cap_enforced() {
        let line = format!(
            "{{\"op\":\"sample\",\"release\":\"r\",\"n\":{},\"seed\":1}}",
            MAX_SAMPLE_N + 1
        );
        assert!(parse_request(&line).unwrap_err().contains("cap"));
    }

    #[test]
    fn frames_are_single_lines() {
        let ok = ok_frame("info", vec![("note", Value::String("a\nb".into()))]);
        assert!(!ok.contains('\n'), "{ok}");
        assert!(ok.starts_with("{\"ok\":true,\"op\":\"info\""));
        let err = error_frame("bad\nthing");
        assert!(!err.contains('\n'), "{err}");
        assert!(err.starts_with("{\"ok\":false"));
    }
}
