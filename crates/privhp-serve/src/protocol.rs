//! The wire protocol: one JSON object per line, in both directions — plus
//! an opt-in binary payload for bulk `sample` responses.
//!
//! Every request names an operation in its `op` field; every response is a
//! single-line JSON object whose `ok` field says whether the request
//! succeeded. Successful responses echo the `op` and carry op-specific
//! payload fields; failures carry a human-readable `error` string and,
//! where a client can act on it, a machine-readable `code`. A frame that
//! fails to parse, names an unknown op, or is missing fields is answered
//! with an error frame — the connection (and the listener) stay up, so one
//! bad client request can never take the server down.
//!
//! Requests:
//!
//! ```text
//! {"op":"sample","release":NAME,"n":N,"seed":S}
//! {"op":"query","release":NAME,"range":[A,B] | "point":X | "quantile":Q | "mean":true}
//! {"op":"cdf","release":NAME,"x":X}
//! {"op":"info","release":NAME}
//! {"op":"list"}
//! {"op":"stats"}
//! {"op":"load","name":NAME,"path":PATH}
//! {"op":"format","encoding":"binary"|"json"}
//! {"op":"shutdown"}
//! ```
//!
//! # Binary sample frames
//!
//! Requests are always JSON lines. After a connection negotiates
//! `{"op":"format","encoding":"binary"}`, **successful `sample` responses**
//! on that connection switch to a two-part frame:
//!
//! ```text
//! {"ok":true,"op":"sample","release":R,"n":N,"seed":S,
//!  "encoding":"binary","domain":D,"lanes":L}\n
//! <8-byte little-endian u64: payload byte count = N·L·8>
//! <N·L little-endian f64 lane values, row-major>
//! ```
//!
//! The payload is the release sampler's flat `sample_many_into` buffer
//! verbatim — `lanes` values per point (1 for interval, `dim` for cube, 1
//! for ipv4 where the lane holds the address as an integral `f64`) — so a
//! decoded binary draw is bit-identical to the JSON `points` array at the
//! same seed. Every other response (errors included, even for `sample`)
//! stays a one-line JSON frame.

use std::io::{Read, Write};

use privhp_domain::Ipv4Space;
use serde::Value;

/// Default cap on `sample` batch size per request (`--max-sample-n`
/// raises or lowers it per server); larger draws should be split across
/// requests (each carries its own seed, so pagination is deterministic
/// anyway).
pub const MAX_SAMPLE_N: usize = 1_000_000;

/// Closed-form probes supported by the `query` op (interval releases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// `P[a <= X < b]`.
    Range(f64, f64),
    /// The release leaf cell containing a point, and its mass.
    Point(f64),
    /// Quantile at a rank.
    Quantile(f64),
    /// Mean of the release distribution.
    Mean,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Draw `n` deterministic synthetic points from a named release.
    Sample {
        /// Release name in the registry.
        release: String,
        /// Number of points.
        n: usize,
        /// Sampling seed (equal seeds give byte-identical responses).
        seed: u64,
    },
    /// A closed-form probe against a 1-D release.
    Query {
        /// Release name in the registry.
        release: String,
        /// Which probe.
        probe: Probe,
    },
    /// CDF of a 1-D release at a point.
    Cdf {
        /// Release name in the registry.
        release: String,
        /// Evaluation point (clamped to `[0,1]`).
        x: f64,
    },
    /// Metadata of one release.
    Info {
        /// Release name in the registry.
        release: String,
    },
    /// Summaries of every loaded release.
    List,
    /// Server request/latency counters.
    Stats,
    /// Hot-load a release file into the registry.
    Load {
        /// Name to register the release under (replaces an existing one).
        name: String,
        /// Path to the release JSON on the server's filesystem.
        path: String,
    },
    /// Switch this connection's `sample` response encoding.
    Format {
        /// `true` selects the binary bulk-sample frame, `false` JSON.
        binary: bool,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// Every op name, in a fixed order ([`ServerStats`] counts per index).
///
/// [`ServerStats`]: crate::stats::ServerStats
pub const OPS: [&str; 9] =
    ["sample", "query", "cdf", "info", "list", "stats", "load", "format", "shutdown"];

impl Request {
    /// The request's op name (an entry of [`OPS`]).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Sample { .. } => "sample",
            Request::Query { .. } => "query",
            Request::Cdf { .. } => "cdf",
            Request::Info { .. } => "info",
            Request::List => "list",
            Request::Stats => "stats",
            Request::Load { .. } => "load",
            Request::Format { .. } => "format",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Index of an op name in [`OPS`].
pub fn op_index(op: &str) -> Option<usize> {
    OPS.iter().position(|&o| o == op)
}

fn str_field(v: &Value, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{name}'"))
}

fn u64_field(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing non-negative integer field '{name}'"))
}

fn f64_field(v: &Value, name: &str) -> Result<f64, String> {
    v.get(name).and_then(Value::as_f64).ok_or_else(|| format!("missing number field '{name}'"))
}

/// Parses one request line. Errors are client-facing messages. The sample
/// cap is *not* enforced here — it is a per-server limit the server checks
/// against its configured value (see [`ErrorReply::sample_cap`]).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = serde_json::parse_value_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(v, Value::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let op = v.get("op").and_then(Value::as_str).ok_or("missing string field 'op'")?;
    match op {
        "sample" => Ok(Request::Sample {
            release: str_field(&v, "release")?,
            n: u64_field(&v, "n")? as usize,
            seed: u64_field(&v, "seed")?,
        }),
        "query" => {
            let release = str_field(&v, "release")?;
            let probe = if let Some(r) = v.get("range") {
                let pair = r.as_array().filter(|a| a.len() == 2).ok_or("'range' must be [a,b]")?;
                let a = pair[0].as_f64().ok_or("'range' endpoints must be numbers")?;
                let b = pair[1].as_f64().ok_or("'range' endpoints must be numbers")?;
                Probe::Range(a, b)
            } else if v.get("point").is_some() {
                Probe::Point(f64_field(&v, "point")?)
            } else if v.get("quantile").is_some() {
                Probe::Quantile(f64_field(&v, "quantile")?)
            } else if v.get("mean").is_some() {
                Probe::Mean
            } else {
                return Err(
                    "query needs one of 'range':[a,b] | 'point':x | 'quantile':q | 'mean':true"
                        .into(),
                );
            };
            Ok(Request::Query { release, probe })
        }
        "cdf" => Ok(Request::Cdf { release: str_field(&v, "release")?, x: f64_field(&v, "x")? }),
        "info" => Ok(Request::Info { release: str_field(&v, "release")? }),
        "list" => Ok(Request::List),
        "stats" => Ok(Request::Stats),
        "load" => Ok(Request::Load { name: str_field(&v, "name")?, path: str_field(&v, "path")? }),
        "format" => match str_field(&v, "encoding")?.as_str() {
            "binary" => Ok(Request::Format { binary: true }),
            "json" => Ok(Request::Format { binary: false }),
            other => Err(format!("unknown encoding '{other}' (expected binary | json)")),
        },
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}' (expected one of {})", OPS.join(" | "))),
    }
}

/// Every machine-readable error code the server emits, with its retry
/// classification. This is the single source of truth: the client's retry
/// loop, the table-driven taxonomy test, and the README table all derive
/// from it.
///
/// Retryable codes describe *transient server state* (backpressure, a
/// deadline that fired) — the request itself was fine, and because seeded
/// `sample`/`query` are deterministic, repeating it is idempotent.
/// Terminal codes describe the *request* (too big, malformed, names a
/// release that isn't loaded) or a server bug; repeating those verbatim
/// can never succeed.
pub const ERROR_CODES: [(&str, bool); 8] = [
    ("busy", true),
    ("request_timeout", true),
    ("idle_timeout", true),
    ("unavailable", true),
    ("sample_cap", false),
    ("bad_request", false),
    ("unknown_release", false),
    ("internal", false),
];

/// Whether an error `code` marks a transient failure a client should
/// retry. Unknown codes (a newer server) are conservatively terminal.
pub fn code_is_retryable(code: &str) -> bool {
    ERROR_CODES.iter().any(|&(c, retryable)| c == code && retryable)
}

/// A failed request: the human-readable message plus an optional
/// machine-readable `code` and extra structured fields (e.g. the effective
/// cap on a `sample_cap` rejection).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReply {
    /// Human-readable message (the `error` field).
    pub message: String,
    /// Machine-readable code (the `code` field), when a client can act on
    /// the failure class.
    pub code: Option<&'static str>,
    /// Extra structured fields appended to the frame.
    pub extra: Vec<(&'static str, Value)>,
}

impl From<String> for ErrorReply {
    fn from(message: String) -> Self {
        Self { message, code: None, extra: Vec::new() }
    }
}

impl ErrorReply {
    /// The structured rejection for a `sample` request whose `n` exceeds
    /// the server's configured cap: names the cap in both the message and
    /// a `cap` field, under code `sample_cap`.
    pub fn sample_cap(n: usize, cap: usize) -> Self {
        Self {
            message: format!(
                "n={n} exceeds the per-request sample cap {cap} \
                 (split the draw across seeded requests, or raise --max-sample-n)"
            ),
            code: Some("sample_cap"),
            extra: vec![("cap", Value::UInt(cap as u64))],
        }
    }

    /// A malformed request (bad JSON, unknown op, missing fields), under
    /// the terminal code `bad_request` — retrying the identical bytes can
    /// never succeed.
    pub fn bad_request(message: String) -> Self {
        Self { message, code: Some("bad_request"), extra: Vec::new() }
    }

    /// A request naming a release the registry doesn't hold, under the
    /// terminal code `unknown_release`.
    pub fn unknown_release(message: String) -> Self {
        Self { message, code: Some("unknown_release"), extra: Vec::new() }
    }

    /// A request whose handling blew the server's per-request wall-clock
    /// budget, under the retryable code `request_timeout`; names the
    /// budget in a `timeout_ms` field.
    pub fn request_timeout(budget_ms: u64) -> Self {
        Self {
            message: format!("request exceeded the server's {budget_ms}ms budget"),
            code: Some("request_timeout"),
            extra: vec![("timeout_ms", Value::UInt(budget_ms))],
        }
    }

    /// The parting frame a worker writes before dropping a connection
    /// idle past `--idle-timeout-ms`, under the retryable code
    /// `idle_timeout` — the client did nothing wrong; reconnecting is the
    /// fix.
    pub fn idle_timeout(budget_ms: u64) -> Self {
        Self {
            message: format!("connection idle past {budget_ms}ms, closing"),
            code: Some("idle_timeout"),
            extra: vec![("timeout_ms", Value::UInt(budget_ms))],
        }
    }

    /// Every replica serving a release is down or open-circuit, under the
    /// retryable code `unavailable` — emitted by the cluster router
    /// ([`crate::cluster::ClusterClient`]) after failover exhausts the
    /// rendezvous owner set. Carries the release name in a `release`
    /// field so callers can tell *which* slice of the registry is dark.
    /// Retryable: replicas restart, breakers half-open and close.
    pub fn unavailable(release: &str) -> Self {
        Self {
            message: format!(
                "release '{release}' is unavailable: every replica is down or open-circuit"
            ),
            code: Some("unavailable"),
            extra: vec![("release", Value::String(release.into()))],
        }
    }

    /// A handler panic, under the terminal code `internal` — the request
    /// triggered a server bug, so replaying it would only trip it again.
    pub fn internal() -> Self {
        Self {
            message: "internal error while handling the request".into(),
            code: Some("internal"),
            extra: Vec::new(),
        }
    }

    /// Serialises the one-line error frame:
    /// `{"ok":false,"error":...[,"code":...,<extra>]}`.
    pub fn frame(&self) -> String {
        let mut obj = vec![
            ("ok".to_string(), Value::Bool(false)),
            ("error".to_string(), Value::String(self.message.clone())),
        ];
        if let Some(code) = self.code {
            obj.push(("code".to_string(), Value::String(code.into())));
        }
        obj.extend(self.extra.iter().map(|(k, v)| (k.to_string(), v.clone())));
        frame(Value::Object(obj))
    }
}

/// The load-shed frame an over-capacity server answers (and then closes
/// the connection): `code` is `busy` so clients can tell backpressure from
/// a request-level failure and retry elsewhere/later.
pub fn busy_frame() -> String {
    ErrorReply {
        message: "server busy: connection queue full, try again".into(),
        code: Some("busy"),
        extra: Vec::new(),
    }
    .frame()
}

/// Builds a one-line success frame: `{"ok":true,"op":...,<fields>}`.
pub fn ok_frame(op: &str, fields: Vec<(&str, Value)>) -> String {
    let mut obj =
        vec![("ok".to_string(), Value::Bool(true)), ("op".to_string(), Value::String(op.into()))];
    obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    frame(Value::Object(obj))
}

/// Builds a one-line error frame: `{"ok":false,"error":...}`.
pub fn error_frame(message: &str) -> String {
    ErrorReply::from(message.to_string()).frame()
}

/// Serialises a value compactly — the compact writer emits no raw
/// newlines and escapes them inside strings, so a frame is always exactly
/// one line. `value_to_string` serialises the tree in place (no clone —
/// a 1M-point sample response is a large tree).
fn frame(v: Value) -> String {
    serde_json::value_to_string(&v)
}

// ---- binary sample payload --------------------------------------------------

/// Encode chunk size: 1024 f64 lanes (8 KiB) per `write_all`, so a 1M-point
/// payload streams through a small stack buffer instead of materialising an
/// 8 MB byte vector.
const BINARY_CHUNK_LANES: usize = 1024;

/// Writes the binary sample payload: an 8-byte little-endian byte count
/// (`lanes.len() * 8`) followed by each `f64` lane in little-endian byte
/// order, straight from the flat sample buffer.
pub fn write_binary_payload<W: Write>(w: &mut W, lanes: &[f64]) -> std::io::Result<()> {
    w.write_all(&((lanes.len() as u64) * 8).to_le_bytes())?;
    let mut buf = [0u8; BINARY_CHUNK_LANES * 8];
    for chunk in lanes.chunks(BINARY_CHUNK_LANES) {
        for (lane, out) in chunk.iter().zip(buf.chunks_exact_mut(8)) {
            out.copy_from_slice(&lane.to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 8])?;
    }
    Ok(())
}

/// Reads a binary sample payload written by [`write_binary_payload`]:
/// the length prefix, then exactly that many bytes decoded as little-endian
/// `f64` lanes.
pub fn read_binary_payload<R: Read>(r: &mut R) -> Result<Vec<f64>, String> {
    let mut prefix = [0u8; 8];
    r.read_exact(&mut prefix).map_err(|e| format!("cannot read payload length: {e}"))?;
    let bytes = u64::from_le_bytes(prefix);
    if bytes % 8 != 0 {
        return Err(format!("payload length {bytes} is not a whole number of f64 lanes"));
    }
    let n_lanes = (bytes / 8) as usize;
    // Cap the up-front reservation: the prefix is attacker-controlled
    // bytes, and reserving 2^60 lanes on its say-so would abort the
    // process before the short read below ever reports the truncation.
    let mut lanes = Vec::with_capacity(n_lanes.min(1 << 20));
    let mut buf = [0u8; BINARY_CHUNK_LANES * 8];
    let mut remaining = bytes as usize;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take]).map_err(|e| format!("cannot read payload: {e}"))?;
        lanes.extend(
            buf[..take].chunks_exact(8).map(|b| {
                f64::from_le_bytes(b.try_into().expect("chunks_exact yields 8-byte slices"))
            }),
        );
        remaining -= take;
    }
    Ok(lanes)
}

/// Renders a flat row-major lane buffer as the JSON `points` array for a
/// domain tag (`interval` | `cube` | `ipv4`, as carried by binary sample
/// headers): interval points as numbers, cube points as coordinate arrays,
/// IPv4 points as dotted-quad strings. Shared by the server's JSON sample
/// path and the client-side binary decoder, so the two renderings agree
/// bit-for-bit by construction.
pub fn points_value(domain: &str, lanes: usize, flat: &[f64]) -> Result<Value, String> {
    if lanes == 0 || !flat.len().is_multiple_of(lanes) {
        return Err(format!("payload of {} lanes is not whole {lanes}-lane rows", flat.len()));
    }
    let rows = flat.chunks_exact(lanes);
    match domain {
        "interval" if lanes == 1 => Ok(Value::Array(rows.map(|r| Value::Float(r[0])).collect())),
        "cube" => Ok(Value::Array(
            rows.map(|r| Value::Array(r.iter().map(|x| Value::Float(*x)).collect())).collect(),
        )),
        "ipv4" if lanes == 1 => Ok(Value::Array(
            rows.map(|r| Value::String(Ipv4Space::format_addr(r[0] as u32))).collect(),
        )),
        other => Err(format!("unknown domain '{other}' for a {lanes}-lane payload")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            ("{\"op\":\"sample\",\"release\":\"r\",\"n\":5,\"seed\":7}", "sample"),
            ("{\"op\":\"query\",\"release\":\"r\",\"range\":[0.1,0.4]}", "query"),
            ("{\"op\":\"query\",\"release\":\"r\",\"point\":0.3}", "query"),
            ("{\"op\":\"query\",\"release\":\"r\",\"quantile\":0.5}", "query"),
            ("{\"op\":\"query\",\"release\":\"r\",\"mean\":true}", "query"),
            ("{\"op\":\"cdf\",\"release\":\"r\",\"x\":0.5}", "cdf"),
            ("{\"op\":\"info\",\"release\":\"r\"}", "info"),
            ("{\"op\":\"list\"}", "list"),
            ("{\"op\":\"stats\"}", "stats"),
            ("{\"op\":\"load\",\"name\":\"n\",\"path\":\"/tmp/r.json\"}", "load"),
            ("{\"op\":\"format\",\"encoding\":\"binary\"}", "format"),
            ("{\"op\":\"format\",\"encoding\":\"json\"}", "format"),
            ("{\"op\":\"shutdown\"}", "shutdown"),
        ];
        for (line, op) in cases {
            let req = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(req.op(), op, "{line}");
            assert!(op_index(req.op()).is_some());
        }
        assert_eq!(
            parse_request("{\"op\":\"format\",\"encoding\":\"binary\"}").unwrap(),
            Request::Format { binary: true }
        );
        assert_eq!(
            parse_request("{\"op\":\"format\",\"encoding\":\"json\"}").unwrap(),
            Request::Format { binary: false }
        );
    }

    #[test]
    fn rejects_malformed_frames_with_messages() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("42", "JSON object"),
            ("{}", "'op'"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"sample\",\"release\":\"r\"}", "'n'"),
            ("{\"op\":\"sample\",\"release\":\"r\",\"n\":1}", "'seed'"),
            ("{\"op\":\"sample\",\"n\":1,\"seed\":1}", "'release'"),
            ("{\"op\":\"query\",\"release\":\"r\"}", "one of"),
            ("{\"op\":\"query\",\"release\":\"r\",\"range\":[0.1]}", "[a,b]"),
            ("{\"op\":\"cdf\",\"release\":\"r\"}", "'x'"),
            ("{\"op\":\"load\",\"name\":\"n\"}", "'path'"),
            ("{\"op\":\"format\"}", "'encoding'"),
            ("{\"op\":\"format\",\"encoding\":\"msgpack\"}", "unknown encoding"),
        ] {
            let e = parse_request(line).unwrap_err();
            assert!(e.contains(needle), "{line}: expected '{needle}' in '{e}'");
        }
    }

    #[test]
    fn sample_cap_error_names_the_cap() {
        // The cap is a server-side limit now: parsing accepts any n...
        let line = format!(
            "{{\"op\":\"sample\",\"release\":\"r\",\"n\":{},\"seed\":1}}",
            MAX_SAMPLE_N + 1
        );
        assert!(parse_request(&line).is_ok(), "the cap is enforced by the server, not the parser");
        // ...and the structured rejection carries both the message and a
        // machine-readable code + cap field.
        let reply = ErrorReply::sample_cap(MAX_SAMPLE_N + 1, MAX_SAMPLE_N);
        assert!(reply.message.contains("cap 1000000"), "{}", reply.message);
        let f = reply.frame();
        assert!(f.contains("\"code\":\"sample_cap\""), "{f}");
        assert!(f.contains("\"cap\":1000000"), "{f}");
        assert!(f.starts_with("{\"ok\":false"), "{f}");
    }

    #[test]
    fn unavailable_frame_names_the_release() {
        let f = ErrorReply::unavailable("alpha").frame();
        assert!(f.starts_with("{\"ok\":false"), "{f}");
        assert!(f.contains("\"code\":\"unavailable\""), "{f}");
        assert!(f.contains("\"release\":\"alpha\""), "{f}");
        assert!(code_is_retryable("unavailable"), "replicas restart; retrying must be invited");
    }

    #[test]
    fn oversized_binary_prefix_reports_truncation_without_reserving() {
        // A hostile 8-byte prefix claiming an exabyte payload must fail on
        // the short read, not abort in Vec::with_capacity.
        let huge = (u64::MAX - 7).to_le_bytes().to_vec();
        let e = read_binary_payload(&mut huge.as_slice()).unwrap_err();
        assert!(e.contains("payload"), "{e}");
    }

    #[test]
    fn busy_frame_is_structured() {
        let f = busy_frame();
        assert!(f.starts_with("{\"ok\":false"), "{f}");
        assert!(f.contains("\"code\":\"busy\""), "{f}");
        assert!(!f.contains('\n'));
    }

    #[test]
    fn frames_are_single_lines() {
        let ok = ok_frame("info", vec![("note", Value::String("a\nb".into()))]);
        assert!(!ok.contains('\n'), "{ok}");
        assert!(ok.starts_with("{\"ok\":true,\"op\":\"info\""));
        let err = error_frame("bad\nthing");
        assert!(!err.contains('\n'), "{err}");
        assert!(err.starts_with("{\"ok\":false"));
    }

    #[test]
    fn binary_payload_round_trips() {
        for lanes in [
            vec![],
            vec![0.0],
            vec![0.25, -1.5, f64::MIN_POSITIVE, 1.0 / 3.0, 1e300],
            (0..4096).map(|i| (i as f64) / 4096.0).collect::<Vec<_>>(),
        ] {
            let mut wire = Vec::new();
            write_binary_payload(&mut wire, &lanes).unwrap();
            assert_eq!(wire.len(), 8 + lanes.len() * 8);
            assert_eq!(u64::from_le_bytes(wire[..8].try_into().unwrap()), lanes.len() as u64 * 8);
            let decoded = read_binary_payload(&mut wire.as_slice()).unwrap();
            assert_eq!(decoded.len(), lanes.len());
            for (a, b) in lanes.iter().zip(&decoded) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn binary_payload_rejects_truncation_and_ragged_lengths() {
        let mut wire = Vec::new();
        write_binary_payload(&mut wire, &[1.0, 2.0]).unwrap();
        wire.truncate(wire.len() - 1);
        assert!(read_binary_payload(&mut wire.as_slice()).unwrap_err().contains("payload"));
        let ragged = 7u64.to_le_bytes().to_vec();
        let e = read_binary_payload(&mut ragged.as_slice()).unwrap_err();
        assert!(e.contains("whole number"), "{e}");
    }

    #[test]
    fn points_render_by_domain() {
        let v = points_value("interval", 1, &[0.5, 0.25]).unwrap();
        assert_eq!(serde_json::value_to_string(&v), "[0.5,0.25]");
        let v = points_value("cube", 2, &[0.5, 0.25, 0.75, 1.0]).unwrap();
        assert_eq!(serde_json::value_to_string(&v), "[[0.5,0.25],[0.75,1.0]]");
        let v = points_value("ipv4", 1, &[(192u32 << 24 | 168 << 16 | 1) as f64]).unwrap();
        assert_eq!(serde_json::value_to_string(&v), "[\"192.168.0.1\"]");
        assert!(points_value("interval", 2, &[0.1, 0.2, 0.3]).is_err(), "ragged rows");
        assert!(points_value("nope", 1, &[0.1]).is_err(), "unknown domain");
    }
}
