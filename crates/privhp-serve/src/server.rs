//! The serve loop: a blocking [`TcpListener`] accept loop fanning
//! connections out to scoped handler threads.
//!
//! Concurrency model (same std-only toolkit as the bench crate's runner):
//! `std::thread::scope` owns one thread per live connection, all borrowing
//! the server's shared state — the release [`Registry`] and
//! [`ServerStats`] behind `Arc`-free shared references. Releases are
//! immutable after load, so request handling takes no lock beyond the
//! registry's brief read lock to clone an `Arc` out.
//!
//! Shutdown: a `shutdown` request (or [`Server::request_shutdown`]) flips
//! an atomic flag and pokes the listener with a dummy connection so the
//! blocking `accept` observes it. Handler threads poll the flag on a short
//! read timeout, so the scope joins within one timeout tick even when
//! clients keep idle connections open.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use serde::Value;

use crate::protocol::{error_frame, ok_frame, parse_request, Request};
use crate::registry::{LoadedRelease, Registry};
use crate::stats::ServerStats;

/// A request line longer than this closes the connection with an error
/// frame (protects the server from an unbounded buffer on a stream that
/// never sends a newline).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// How often idle handler threads re-check the shutdown flag; bounds the
/// time between a shutdown request and the serve loop returning.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A bound listener plus the state its connections share.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    registry: Registry,
    stats: ServerStats,
    shutdown: AtomicBool,
}

/// A successful response's payload fields plus the number of synthetic
/// points it carries (for the stats counters).
type Payload = (Vec<(&'static str, Value)>, u64);

/// What the dispatcher tells the connection loop to do after responding.
struct Dispatch {
    response: String,
    op: Option<&'static str>,
    points: u64,
    error: bool,
    shutdown: bool,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over a
    /// registry of preloaded releases.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            registry,
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared release registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Flags the serve loop to stop and wakes its blocking `accept`.
    /// Idempotent; safe from any thread.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke accept() awake; if the connect fails the listener is
        // already closed or unreachable, which also ends the loop.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Serves until shutdown. Blocks; run it on a dedicated thread when
    /// the caller needs to keep working.
    pub fn run(&self) {
        std::thread::scope(|scope| {
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        self.stats.connection_opened();
                        scope.spawn(move || {
                            // A panicking handler must never unwind into
                            // the scope join and kill the listener.
                            let _ =
                                catch_unwind(AssertUnwindSafe(|| self.handle_connection(stream)));
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure (e.g. EMFILE); back off
                        // briefly instead of spinning.
                        std::thread::sleep(POLL_INTERVAL);
                    }
                }
            }
        });
    }

    fn handle_connection(&self, stream: TcpStream) {
        // The short timeout doubles as the shutdown poll interval.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let Ok(read_half) = stream.try_clone() else { return };
        // The `Take` bounds how much one line can buffer: `read_line` only
        // returns at a newline, EOF, *or the limit* — without it a fast
        // newline-less stream would grow `line` unboundedly before the
        // length checks below ever ran.
        let mut reader = BufReader::new(read_half.take(MAX_REQUEST_BYTES as u64 + 1));
        let mut writer = stream;
        let mut line = String::new();

        'conn: loop {
            line.clear();
            // Re-arm the per-line read budget (buffered carry-over from
            // the previous line is at most BufReader's 8 KiB, well under
            // the 1 MiB cap; the bound stays sharp enough to matter).
            reader.get_mut().set_limit(MAX_REQUEST_BYTES as u64 + 1);
            // Accumulate one line, tolerating read timeouts mid-line.
            let eof = loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match reader.read_line(&mut line) {
                    Ok(0) => break true,
                    Ok(_) => break false,
                    Err(e)
                        if matches!(
                            e.kind(),
                            ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                        ) =>
                    {
                        if line.len() > MAX_REQUEST_BYTES {
                            let _ = writeln!(writer, "{}", error_frame("request line too long"));
                            return;
                        }
                    }
                    Err(_) => {
                        // Unrecoverable stream error (reset, invalid
                        // UTF-8); nothing sensible left to answer.
                        return;
                    }
                }
            };
            if line.len() > MAX_REQUEST_BYTES {
                let _ = writeln!(writer, "{}", error_frame("request line too long"));
                return;
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                if eof {
                    return;
                }
                continue; // blank keep-alive line: no response frame
            }

            let started = Instant::now();
            let d = self.dispatch(trimmed);
            self.stats.record(d.op, started.elapsed(), d.points, d.error);
            if writeln!(writer, "{}", d.response).and_then(|_| writer.flush()).is_err() {
                return; // client went away mid-response
            }
            if d.shutdown {
                self.request_shutdown();
                return;
            }
            if eof {
                break 'conn;
            }
        }
    }

    /// Parses and answers one frame. Never panics outward: handler panics
    /// become an `internal error` frame so the connection and listener
    /// both survive any single bad request.
    fn dispatch(&self, line: &str) -> Dispatch {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(msg) => {
                return Dispatch {
                    response: error_frame(&msg),
                    op: None,
                    points: 0,
                    error: true,
                    shutdown: false,
                }
            }
        };
        let op = request.op();
        let shutdown = matches!(request, Request::Shutdown);
        match catch_unwind(AssertUnwindSafe(|| self.answer(&request))) {
            Ok(Ok((fields, points))) => Dispatch {
                response: ok_frame(op, fields),
                op: Some(op),
                points,
                error: false,
                shutdown,
            },
            Ok(Err(msg)) => Dispatch {
                response: error_frame(&msg),
                op: Some(op),
                points: 0,
                error: true,
                shutdown: false,
            },
            Err(_) => Dispatch {
                response: error_frame("internal error answering the request"),
                op: Some(op),
                points: 0,
                error: true,
                shutdown: false,
            },
        }
    }

    /// Computes a successful response's payload.
    fn answer(&self, request: &Request) -> Result<Payload, String> {
        match request {
            Request::Sample { release, n, seed } => {
                let rel = self.registry.get(release)?;
                let points = rel.sample_points(*n, *seed);
                Ok((
                    vec![
                        ("release", Value::String(release.clone())),
                        ("n", Value::UInt(*n as u64)),
                        ("seed", Value::UInt(*seed)),
                        ("points", Value::Array(points)),
                    ],
                    *n as u64,
                ))
            }
            Request::Query { release, probe } => {
                let rel = self.registry.get(release)?;
                let mut fields = vec![("release", Value::String(release.clone()))];
                fields.extend(rel.query(probe)?);
                Ok((fields, 0))
            }
            Request::Cdf { release, x } => {
                let rel = self.registry.get(release)?;
                Ok((
                    vec![
                        ("release", Value::String(release.clone())),
                        ("x", Value::Float(*x)),
                        ("value", Value::Float(rel.cdf(*x)?)),
                    ],
                    0,
                ))
            }
            Request::Info { release } => Ok((self.registry.get(release)?.info_fields(), 0)),
            Request::List => Ok((vec![("releases", Value::Array(self.registry.summaries()))], 0)),
            Request::Stats => Ok((self.stats.fields(), 0)),
            Request::Load { name, path } => {
                let loaded = LoadedRelease::load(name, path)?;
                let summary = loaded.summary();
                let replaced = self.registry.insert(loaded);
                Ok((
                    vec![
                        ("name", Value::String(name.clone())),
                        ("replaced", Value::Bool(replaced)),
                        ("release", summary),
                    ],
                    0,
                ))
            }
            Request::Shutdown => Ok((vec![("stopping", Value::Bool(true))], 0)),
        }
    }
}
