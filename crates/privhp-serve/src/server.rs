//! The serve loop: a blocking [`TcpListener`] accept loop feeding a
//! **bounded worker pool** through a bounded connection queue, with
//! explicit load-shedding when the queue is full.
//!
//! Concurrency model (same std-only toolkit as the bench crate's runner):
//! `std::thread::scope` owns a fixed pool of [`ServerConfig::workers`]
//! worker threads, all borrowing the server's shared state — the release
//! [`Registry`] and [`ServerStats`] behind `Arc`-free shared references.
//! The accept loop never blocks on downstream work and never spawns: it
//! pushes each accepted connection onto a `Mutex<VecDeque>` + `Condvar`
//! queue of depth [`ServerConfig::queue_depth`] and goes straight back to
//! `accept`. When the queue is full the connection is *shed*: answered
//! with the structured [`busy_frame`] (code `busy`) under a short write
//! timeout and closed, counted in the `stats` op's `shed` field — an
//! accept storm costs one frame write per connection, bounded worker
//! memory, and zero new threads. A worker owns a connection until the
//! peer closes it, so at most `workers` connections are in flight and at
//! most `queue_depth` are waiting.
//!
//! Releases are immutable after load, so request handling takes no lock
//! beyond the registry's brief read lock to clone an `Arc` out.
//!
//! Shutdown: a `shutdown` request (or [`Server::request_shutdown`]) flips
//! an atomic flag and pokes the listener with a dummy connection so the
//! blocking `accept` observes it. Workers poll the flag between queue
//! waits and between reads (both on a short timeout), so the scope joins
//! within one timeout tick even when clients keep idle connections open;
//! connections still waiting in the queue are dropped unanswered.
//!
//! Per-connection state is one flag: the negotiated `sample` encoding
//! (`format` op). In binary mode a successful `sample` response is a JSON
//! header line followed by a length-prefixed little-endian `f64` payload
//! written straight from the flat sample buffer (see [`crate::protocol`]).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::Value;

use crate::protocol::{
    busy_frame, error_frame, ok_frame, parse_request, write_binary_payload, ErrorReply, Request,
    MAX_SAMPLE_N,
};
use crate::registry::{LoadedRelease, Registry};
use crate::stats::ServerStats;

/// A request line longer than this closes the connection with an error
/// frame (protects the server from an unbounded buffer on a stream that
/// never sends a newline).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// How often idle workers re-check the shutdown flag (as the queue-pop
/// and read timeout); bounds the time between a shutdown request and the
/// serve loop returning.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Sizing and limits of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads handling connections (each owns one connection at a
    /// time). Default: available parallelism.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before newcomers
    /// are shed with a `busy` frame.
    pub queue_depth: usize,
    /// Per-request cap on `sample`'s `n` (`--max-sample-n`); larger
    /// requests are rejected with a structured `sample_cap` error.
    pub max_sample_n: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_depth: 64,
            max_sample_n: MAX_SAMPLE_N,
        }
    }
}

/// The bounded connection queue between the accept loop and the workers.
#[derive(Debug)]
struct ConnQueue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a connection, or returns it when the queue is full — the
    /// accept loop sheds it; it never blocks here.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues a connection, waiting at most `timeout` — workers re-check
    /// the shutdown flag between waits.
    fn pop_timeout(&self, timeout: Duration) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = q.pop_front() {
            return Some(s);
        }
        let (mut q, _timed_out) =
            self.ready.wait_timeout(q, timeout).unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }
}

/// A bound listener plus the state its connections share.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    registry: Registry,
    stats: ServerStats,
    shutdown: AtomicBool,
    config: ServerConfig,
    queue: ConnQueue,
}

/// A successful response's payload fields plus the number of synthetic
/// points it carries (for the stats counters) and, in binary mode, the
/// flat sample payload shipped after the header line.
struct Answer {
    fields: Vec<(&'static str, Value)>,
    points: u64,
    payload: Option<Vec<f64>>,
}

impl Answer {
    fn fields(fields: Vec<(&'static str, Value)>) -> Self {
        Self { fields, points: 0, payload: None }
    }
}

/// What the dispatcher tells the connection loop to do after responding.
struct Dispatch {
    header: String,
    payload: Option<Vec<f64>>,
    op: Option<&'static str>,
    points: u64,
    error: bool,
    shutdown: bool,
    set_binary: Option<bool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over a
    /// registry of preloaded releases, with default sizing.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<Self> {
        Self::bind_with(addr, registry, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit pool/queue/cap sizing.
    pub fn bind_with(
        addr: &str,
        registry: Registry,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            registry,
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
            queue: ConnQueue::new(config.queue_depth),
            config,
        })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared release registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The effective sizing (after floors applied at bind).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Flags the serve loop to stop and wakes its blocking `accept`.
    /// Idempotent; safe from any thread.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke accept() awake; if the connect fails the listener is
        // already closed or unreachable, which also ends the loop.
        let _ = TcpStream::connect(self.local_addr);
        // Wake workers parked on the queue condvar.
        self.queue.ready.notify_all();
    }

    /// Serves until shutdown. Blocks; run it on a dedicated thread when
    /// the caller needs to keep working.
    pub fn run(&self) {
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers {
                scope.spawn(|| self.worker_loop());
            }
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        self.stats.connection_opened();
                        if let Err(stream) = self.queue.try_push(stream) {
                            self.stats.connection_shed();
                            shed(stream);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure (e.g. EMFILE); back off
                        // briefly instead of spinning.
                        std::thread::sleep(POLL_INTERVAL);
                    }
                }
            }
            // Wake any worker still parked on the queue so the scope joins.
            self.queue.ready.notify_all();
        });
    }

    /// One worker: pull connections off the queue until shutdown. A
    /// panicking handler must never unwind out and kill the pool.
    fn worker_loop(&self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Some(stream) = self.queue.pop_timeout(POLL_INTERVAL) else { continue };
            let _ = catch_unwind(AssertUnwindSafe(|| self.handle_connection(stream)));
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        // The short timeout doubles as the shutdown poll interval.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        // Response frames are small and latency-bound (and the binary
        // path writes header and payload separately); without TCP_NODELAY
        // Nagle + delayed ACK adds tens of milliseconds per request.
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else { return };
        // The `Take` bounds how much one line can buffer: `read_line` only
        // returns at a newline, EOF, *or the limit* — without it a fast
        // newline-less stream would grow `line` unboundedly before the
        // length checks below ever ran.
        let mut reader = BufReader::new(read_half.take(MAX_REQUEST_BYTES as u64 + 1));
        let mut writer = stream;
        let mut line = String::new();
        let mut binary = false;

        'conn: loop {
            line.clear();
            // Re-arm the per-line read budget (buffered carry-over from
            // the previous line is at most BufReader's 8 KiB, well under
            // the 1 MiB cap; the bound stays sharp enough to matter).
            reader.get_mut().set_limit(MAX_REQUEST_BYTES as u64 + 1);
            // Accumulate one line, tolerating read timeouts mid-line.
            let eof = loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match reader.read_line(&mut line) {
                    Ok(0) => break true,
                    Ok(_) => break false,
                    Err(e)
                        if matches!(
                            e.kind(),
                            ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                        ) =>
                    {
                        if line.len() > MAX_REQUEST_BYTES {
                            let _ = writeln!(writer, "{}", error_frame("request line too long"));
                            return;
                        }
                    }
                    Err(_) => {
                        // Unrecoverable stream error (reset, invalid
                        // UTF-8); nothing sensible left to answer.
                        return;
                    }
                }
            };
            if line.len() > MAX_REQUEST_BYTES {
                let _ = writeln!(writer, "{}", error_frame("request line too long"));
                return;
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                if eof {
                    return;
                }
                continue; // blank keep-alive line: no response frame
            }

            let started = Instant::now();
            let d = self.dispatch(trimmed, binary);
            self.stats.record(d.op, started.elapsed(), d.points, d.error);
            let sent = writeln!(writer, "{}", d.header)
                .and_then(|_| match &d.payload {
                    Some(lanes) => write_binary_payload(&mut writer, lanes),
                    None => Ok(()),
                })
                .and_then(|_| writer.flush());
            if sent.is_err() {
                return; // client went away mid-response
            }
            if let Some(mode) = d.set_binary {
                binary = mode;
            }
            if d.shutdown {
                self.request_shutdown();
                return;
            }
            if eof {
                break 'conn;
            }
        }
    }

    /// Parses and answers one frame. Never panics outward: handler panics
    /// become an `internal error` frame so the connection and listener
    /// both survive any single bad request.
    fn dispatch(&self, line: &str, binary: bool) -> Dispatch {
        let error_dispatch = |reply: ErrorReply, op: Option<&'static str>| Dispatch {
            header: reply.frame(),
            payload: None,
            op,
            points: 0,
            error: true,
            shutdown: false,
            set_binary: None,
        };
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(msg) => return error_dispatch(ErrorReply::from(msg), None),
        };
        let op = request.op();
        let shutdown = matches!(request, Request::Shutdown);
        let set_binary = match request {
            Request::Format { binary } => Some(binary),
            _ => None,
        };
        match catch_unwind(AssertUnwindSafe(|| self.answer(&request, binary))) {
            Ok(Ok(answer)) => Dispatch {
                header: ok_frame(op, answer.fields),
                payload: answer.payload,
                op: Some(op),
                points: answer.points,
                error: false,
                shutdown,
                set_binary,
            },
            Ok(Err(reply)) => error_dispatch(reply, Some(op)),
            Err(_) => error_dispatch(
                ErrorReply::from("internal error answering the request".to_string()),
                Some(op),
            ),
        }
    }

    /// Computes a successful response's payload.
    fn answer(&self, request: &Request, binary: bool) -> Result<Answer, ErrorReply> {
        match request {
            Request::Sample { release, n, seed } => {
                if *n > self.config.max_sample_n {
                    return Err(ErrorReply::sample_cap(*n, self.config.max_sample_n));
                }
                let rel = self.registry.get(release)?;
                let mut fields = vec![
                    ("release", Value::String(release.clone())),
                    ("n", Value::UInt(*n as u64)),
                    ("seed", Value::UInt(*seed)),
                ];
                let flat = rel.sample_flat(*n, *seed);
                let payload = if binary {
                    fields.push(("encoding", Value::String("binary".into())));
                    fields.push(("domain", Value::String(rel.domain_tag().into())));
                    fields.push(("lanes", Value::UInt(rel.point_lanes() as u64)));
                    Some(flat)
                } else {
                    let points =
                        crate::protocol::points_value(rel.domain_tag(), rel.point_lanes(), &flat)?;
                    fields.push(("points", points));
                    None
                };
                Ok(Answer { fields, points: *n as u64, payload })
            }
            Request::Query { release, probe } => {
                let rel = self.registry.get(release)?;
                let mut fields = vec![("release", Value::String(release.clone()))];
                fields.extend(rel.query(probe)?);
                Ok(Answer::fields(fields))
            }
            Request::Cdf { release, x } => {
                let rel = self.registry.get(release)?;
                Ok(Answer::fields(vec![
                    ("release", Value::String(release.clone())),
                    ("x", Value::Float(*x)),
                    ("value", Value::Float(rel.cdf(*x)?)),
                ]))
            }
            Request::Info { release } => {
                Ok(Answer::fields(self.registry.get(release)?.info_fields()))
            }
            Request::List => {
                Ok(Answer::fields(vec![("releases", Value::Array(self.registry.summaries()))]))
            }
            Request::Stats => Ok(Answer::fields(self.stats.fields())),
            Request::Load { name, path } => {
                let loaded = LoadedRelease::load(name, path)?;
                let summary = loaded.summary();
                let replaced = self.registry.insert(loaded);
                Ok(Answer::fields(vec![
                    ("name", Value::String(name.clone())),
                    ("replaced", Value::Bool(replaced)),
                    ("release", summary),
                ]))
            }
            Request::Format { binary } => Ok(Answer::fields(vec![(
                "encoding",
                Value::String(if *binary { "binary" } else { "json" }.into()),
            )])),
            Request::Shutdown => Ok(Answer::fields(vec![("stopping", Value::Bool(true))])),
        }
    }
}

/// Sheds one over-capacity connection: best-effort `busy` frame under a
/// short write timeout (a peer that never reads must not stall the accept
/// loop), then close.
fn shed(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
    let mut stream = stream;
    let _ = writeln!(stream, "{}", busy_frame());
    let _ = stream.flush();
}
