//! The serve loop: a blocking [`TcpListener`] accept loop feeding a
//! **bounded worker pool** through a bounded connection queue, with
//! explicit load-shedding when the queue is full, per-request and idle
//! deadlines, and optional seeded fault injection for chaos testing.
//!
//! Concurrency model (same std-only toolkit as the bench crate's runner):
//! `std::thread::scope` owns a fixed pool of [`ServerConfig::workers`]
//! worker threads, all borrowing the server's shared state — the release
//! [`Registry`] and [`ServerStats`] behind `Arc`-free shared references.
//! The accept loop never blocks on downstream work and never spawns: it
//! pushes each accepted connection onto a `Mutex<VecDeque>` + `Condvar`
//! queue of depth [`ServerConfig::queue_depth`] and goes straight back to
//! `accept`. When the queue is full the connection is *shed*: answered
//! with the structured [`busy_frame`] (code `busy`) under a short write
//! timeout and closed — an accept storm costs one frame write per
//! connection, bounded worker memory, and zero new threads. A worker owns
//! a connection until it ends, so at most `workers` connections are in
//! flight and at most `queue_depth` are waiting.
//!
//! # Deadlines
//!
//! Two knobs keep hostile or stalled clients from pinning workers:
//!
//! * [`ServerConfig::idle_timeout`] (`--idle-timeout-ms`) bounds how long
//!   a worker waits for the *next complete request line*. The clock runs
//!   from start-of-wait to the line's terminating newline, so both a
//!   silent keep-alive and a slow-loris client trickling a request one
//!   byte at a time hit it (partial bytes and blank keep-alive lines do
//!   **not** reset it). On expiry the worker writes a parting structured
//!   `idle_timeout` frame, closes the connection, and returns to the
//!   queue — the ROADMAP's "idle keep-alives pin workers" concern.
//! * [`ServerConfig::request_timeout`] (`--request-timeout-ms`) is the
//!   wall-clock budget from a complete request line to its response. A
//!   request that blows it is answered with a structured
//!   `request_timeout` frame instead of its (late) result and the
//!   connection is dropped; the budget also serves as the response write
//!   timeout, so a peer that stops reading cannot wedge a worker.
//!
//! # Connection accounting
//!
//! Every accepted connection ends in exactly one [`Disposition`] —
//! `served`, `shed`, `timed_out`, `idle_closed`, or `io_error` — counted
//! in [`ServerStats`] alongside an `open` gauge, with the identity
//! `connections == served + shed + timed_out + idle_closed + io_error +
//! open` holding at any quiet instant (CI asserts it after a chaos run).
//! Response write failures are part of the identity (`io_error`), not
//! silently discarded. Connections still queued at shutdown are settled
//! as `shed` with a best-effort `busy` frame.
//!
//! # Fault injection
//!
//! When [`ServerConfig::fault_seed`] is armed (`--fault-seed` or the
//! `PRIVHP_FAULT_SEED` env var) each accepted connection derives a
//! [`FaultPlan`] and its responses flow through a
//! [`FaultWriter`] — see the [`crate::fault`] docs
//! for the schedule. Unarmed servers pay one `Option` branch per write.
//!
//! Releases are immutable after load, so request handling takes no lock
//! beyond the registry's brief read lock to clone an `Arc` out. A hot
//! `load` stages the new release fully (read, parse, validate, leaf-CDF
//! build) before the atomic map swap, so a corrupt file can never evict a
//! serving release; with [`ServerConfig::snapshot_path`] set, each
//! successful `load` also rewrites the registry snapshot (atomic
//! temp-file rename) a restarted server can reload from.
//!
//! Shutdown: a `shutdown` request (or [`Server::request_shutdown`]) flips
//! an atomic flag and pokes the listener with a dummy connection so the
//! blocking `accept` observes it. Workers poll the flag between queue
//! waits and between reads (both on a short timeout), so the scope joins
//! within one timeout tick even when clients keep idle connections open.
//!
//! Per-connection state is one flag: the negotiated `sample` encoding
//! (`format` op). In binary mode a successful `sample` response is a JSON
//! header line followed by a length-prefixed little-endian `f64` payload
//! written straight from the flat sample buffer (see [`crate::protocol`]).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Take, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::Value;

use crate::fault::{FaultPlan, FaultWriter, ReadAction};
use crate::protocol::{
    busy_frame, ok_frame, parse_request, write_binary_payload, ErrorReply, Request, MAX_SAMPLE_N,
};
use crate::registry::{LoadedRelease, Registry};
use crate::stats::{Disposition, ServerStats};

/// A request line longer than this closes the connection with an error
/// frame (protects the server from an unbounded buffer on a stream that
/// never sends a newline).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// How often idle workers re-check the shutdown flag (as the queue-pop
/// and read timeout); bounds the time between a shutdown request and the
/// serve loop returning, and sets the granularity of the idle deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Default [`ServerConfig::request_timeout`]: generous enough for a
/// 1M-point binary draw on a loaded box, small enough that a wedged
/// handler frees its worker the same minute.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Default [`ServerConfig::idle_timeout`]: an interactive client gets a
/// minute between requests before its worker is reclaimed.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Sizing, limits and deadlines of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads handling connections (each owns one connection at a
    /// time). Default: available parallelism.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before newcomers
    /// are shed with a `busy` frame.
    pub queue_depth: usize,
    /// Per-request cap on `sample`'s `n` (`--max-sample-n`); larger
    /// requests are rejected with a structured `sample_cap` error.
    pub max_sample_n: usize,
    /// Wall-clock budget per request (`--request-timeout-ms`; 0 disables
    /// → `None`). Overruns answer a `request_timeout` frame and drop the
    /// connection, counted in `stats.timed_out`.
    pub request_timeout: Option<Duration>,
    /// How long a worker waits for the next complete request line
    /// (`--idle-timeout-ms`; 0 disables → `None`). Expiry writes an
    /// `idle_timeout` frame and frees the worker, counted in
    /// `stats.idle_closed`.
    pub idle_timeout: Option<Duration>,
    /// Arms deterministic fault injection (`--fault-seed` /
    /// `PRIVHP_FAULT_SEED`): each connection's faults derive from
    /// `(seed, connection index)`. `None` (the default) is zero-cost.
    pub fault_seed: Option<u64>,
    /// Registry snapshot file (`--registry-snapshot`): rewritten
    /// atomically after every successful `load`, reloadable at boot.
    pub snapshot_path: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_depth: 64,
            max_sample_n: MAX_SAMPLE_N,
            request_timeout: Some(DEFAULT_REQUEST_TIMEOUT),
            idle_timeout: Some(DEFAULT_IDLE_TIMEOUT),
            fault_seed: None,
            snapshot_path: None,
        }
    }
}

/// One accepted connection heading to a worker: the stream plus its
/// derived fault schedule (always `None` on an unarmed server).
struct Conn {
    stream: TcpStream,
    plan: Option<FaultPlan>,
}

/// The bounded connection queue between the accept loop and the workers.
struct ConnQueue {
    inner: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for ConnQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnQueue").field("capacity", &self.capacity).finish_non_exhaustive()
    }
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a connection, or returns it when the queue is full — the
    /// accept loop sheds it; it never blocks here.
    fn try_push(&self, conn: Conn) -> Result<(), Conn> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.capacity {
            return Err(conn);
        }
        q.push_back(conn);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues a connection, waiting at most `timeout` — workers re-check
    /// the shutdown flag between waits.
    fn pop_timeout(&self, timeout: Duration) -> Option<Conn> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = q.pop_front() {
            return Some(s);
        }
        let (mut q, _timed_out) =
            self.ready.wait_timeout(q, timeout).unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }

    /// Dequeues without waiting (the post-shutdown drain).
    fn try_pop(&self) -> Option<Conn> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
    }
}

/// A bound listener plus the state its connections share.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    registry: Registry,
    stats: ServerStats,
    shutdown: AtomicBool,
    config: ServerConfig,
    queue: ConnQueue,
}

/// A successful response's payload fields plus the number of synthetic
/// points it carries (for the stats counters) and, in binary mode, the
/// flat sample payload shipped after the header line.
struct Answer {
    fields: Vec<(&'static str, Value)>,
    points: u64,
    payload: Option<Vec<f64>>,
}

impl Answer {
    fn fields(fields: Vec<(&'static str, Value)>) -> Self {
        Self { fields, points: 0, payload: None }
    }
}

/// What the dispatcher tells the connection loop to do after responding.
struct Dispatch {
    header: String,
    payload: Option<Vec<f64>>,
    op: Option<&'static str>,
    points: u64,
    error: bool,
    shutdown: bool,
    set_binary: Option<bool>,
}

/// How one attempt to read a request line ended.
enum LineOutcome {
    /// `buf` holds a complete line (terminating newline included).
    Line,
    /// Clean end of stream (`buf` may hold a final unterminated line).
    Eof,
    /// The idle deadline fired before a complete line arrived.
    Idle,
    /// The line exceeded [`MAX_REQUEST_BYTES`].
    TooLong,
    /// The server is shutting down.
    Shutdown,
    /// Unrecoverable stream error (reset, torn pipe).
    StreamError,
}

/// Accumulates one request line into `buf` with the idle deadline and the
/// shutdown flag checked every poll tick. `read_line` is unusable here:
/// it loops internally until newline/EOF/limit, so a client trickling
/// bytes faster than the read timeout would keep it from ever returning —
/// this manual `fill_buf`/`consume` loop is what makes the idle deadline
/// bite on slow-loris requests, not just silent connections.
fn read_request_line(
    reader: &mut BufReader<Take<TcpStream>>,
    buf: &mut Vec<u8>,
    idle_deadline: Option<Instant>,
    shutdown: &AtomicBool,
) -> LineOutcome {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return LineOutcome::Shutdown;
        }
        if idle_deadline.is_some_and(|d| Instant::now() >= d) {
            return LineOutcome::Idle;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return LineOutcome::TooLong;
        }
        match reader.fill_buf() {
            Ok([]) => return LineOutcome::Eof,
            Ok(bytes) => {
                if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                    buf.extend_from_slice(&bytes[..=pos]);
                    reader.consume(pos + 1);
                    return LineOutcome::Line;
                }
                let n = bytes.len();
                buf.extend_from_slice(bytes);
                reader.consume(n);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => return LineOutcome::StreamError,
        }
    }
}

/// Writes one response (header line plus optional binary payload) through
/// the connection's fault layer. Exactly one response per call, so the
/// fault plan's per-response bookkeeping stays aligned with the request
/// index.
fn write_response(
    writer: &mut TcpStream,
    header: &str,
    payload: Option<&[f64]>,
    plan: Option<&mut FaultPlan>,
) -> std::io::Result<()> {
    let mut fw = FaultWriter::new(writer, plan);
    let result = (|| {
        writeln!(fw, "{header}")?;
        if let Some(lanes) = payload {
            fw.begin_payload();
            write_binary_payload(&mut fw, lanes)?;
        }
        fw.flush()
    })();
    fw.finish();
    result
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over a
    /// registry of preloaded releases, with default sizing.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<Self> {
        Self::bind_with(addr, registry, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit sizing, deadlines and fault seed.
    pub fn bind_with(
        addr: &str,
        registry: Registry,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            registry,
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
            queue: ConnQueue::new(config.queue_depth),
            config,
        })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared release registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The effective sizing (after floors applied at bind).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Flags the serve loop to stop and wakes its blocking `accept`.
    /// Idempotent; safe from any thread.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke accept() awake; if the connect fails the listener is
        // already closed or unreachable, which also ends the loop.
        let _ = TcpStream::connect(self.local_addr);
        // Wake workers parked on the queue condvar.
        self.queue.ready.notify_all();
    }

    /// Serves until shutdown. Blocks; run it on a dedicated thread when
    /// the caller needs to keep working.
    pub fn run(&self) {
        let mut conn_index: u64 = 0;
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers {
                scope.spawn(|| self.worker_loop());
            }
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        self.stats.connection_opened();
                        // The index advances per accepted connection (shed
                        // ones included), so a fixed seed and connection
                        // order replay the same fault schedule.
                        let plan =
                            self.config.fault_seed.and_then(|s| FaultPlan::derive(s, conn_index));
                        conn_index += 1;
                        if let Err(conn) = self.queue.try_push(Conn { stream, plan }) {
                            self.stats.connection_closed(Disposition::Shed);
                            shed(conn.stream);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure (e.g. EMFILE); back off
                        // briefly instead of spinning.
                        std::thread::sleep(POLL_INTERVAL);
                    }
                }
            }
            // Wake any worker still parked on the queue so the scope joins.
            self.queue.ready.notify_all();
        });
        // Workers have joined. Settle connections still waiting in the
        // queue (accepted and counted, never picked up) so the accounting
        // identity survives shutdown.
        while let Some(conn) = self.queue.try_pop() {
            self.stats.connection_closed(Disposition::Shed);
            shed(conn.stream);
        }
    }

    /// One worker: pull connections off the queue until shutdown, settling
    /// each with its disposition. A panicking handler must never unwind
    /// out and kill the pool — a panic settles the connection as an I/O
    /// error so the accounting identity holds even then.
    fn worker_loop(&self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Some(conn) = self.queue.pop_timeout(POLL_INTERVAL) else { continue };
            let disposition = catch_unwind(AssertUnwindSafe(|| self.handle_connection(conn)))
                .unwrap_or(Disposition::IoError);
            self.stats.connection_closed(disposition);
        }
    }

    fn handle_connection(&self, conn: Conn) -> Disposition {
        let Conn { stream, mut plan } = conn;
        // The short timeout doubles as the shutdown/idle poll interval.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        // Response frames are small and latency-bound (and the binary
        // path writes header and payload separately); without TCP_NODELAY
        // Nagle + delayed ACK adds tens of milliseconds per request.
        let _ = stream.set_nodelay(true);
        // The request budget doubles as the response write timeout: a
        // peer that stops reading cannot wedge a worker past it.
        if let Some(budget) = self.config.request_timeout {
            let _ = stream.set_write_timeout(Some(budget));
        }
        let Ok(read_half) = stream.try_clone() else { return Disposition::IoError };
        // The `Take` bounds how much one line can buffer beyond the
        // explicit length checks (belt and braces against a fast
        // newline-less stream).
        let mut reader = BufReader::new(read_half.take(MAX_REQUEST_BYTES as u64 + 1));
        let mut writer = stream;
        let mut buf = Vec::new();
        let mut binary = false;
        let mut request_idx: u64 = 0;

        loop {
            // Injected read-side faults fire between requests.
            match plan.as_ref().map_or(ReadAction::Proceed, |p| p.read_action(request_idx)) {
                ReadAction::Proceed => {}
                ReadAction::Delay(d) => std::thread::sleep(d),
                ReadAction::Reset => return Disposition::IoError,
            }
            buf.clear();
            // Re-arm the per-line read budget (buffered carry-over from
            // the previous line is at most BufReader's 8 KiB, well under
            // the 1 MiB cap; the bound stays sharp enough to matter).
            reader.get_mut().set_limit(MAX_REQUEST_BYTES as u64 + 1);
            let idle_deadline = self.config.idle_timeout.map(|t| Instant::now() + t);
            let eof = match read_request_line(&mut reader, &mut buf, idle_deadline, &self.shutdown)
            {
                LineOutcome::Line => false,
                LineOutcome::Eof => true,
                LineOutcome::Shutdown => return Disposition::Served,
                LineOutcome::Idle => {
                    let ms = self.config.idle_timeout.map_or(0, |t| t.as_millis() as u64);
                    // Best-effort parting frame: the peer learns why it
                    // was dropped, but a dead peer can't block the drop.
                    let frame = ErrorReply::idle_timeout(ms).frame();
                    let _ = write_response(&mut writer, &frame, None, plan.as_mut());
                    return Disposition::IdleClosed;
                }
                LineOutcome::TooLong => {
                    let frame = ErrorReply::bad_request("request line too long".into()).frame();
                    return match write_response(&mut writer, &frame, None, plan.as_mut()) {
                        Ok(()) => Disposition::Served,
                        Err(_) => Disposition::IoError,
                    };
                }
                LineOutcome::StreamError => return Disposition::IoError,
            };
            let Ok(text) = std::str::from_utf8(&buf) else {
                // Non-UTF-8 request bytes: nothing sensible to answer.
                return Disposition::IoError;
            };
            let trimmed = text.trim();
            if trimmed.is_empty() {
                if eof {
                    return Disposition::Served;
                }
                continue; // blank keep-alive line: no response frame
            }

            let started = Instant::now();
            let d = self.dispatch(trimmed, binary);
            if let Some(budget) = self.config.request_timeout {
                if started.elapsed() > budget {
                    // The result is already late; the peer gets the
                    // structured overrun (its `points` never shipped, so
                    // they don't count) and the worker is freed.
                    self.stats.record(d.op, started.elapsed(), 0, true);
                    let frame = ErrorReply::request_timeout(budget.as_millis() as u64).frame();
                    let _ = write_response(&mut writer, &frame, None, plan.as_mut());
                    return Disposition::TimedOut;
                }
            }
            self.stats.record(d.op, started.elapsed(), d.points, d.error);
            if write_response(&mut writer, &d.header, d.payload.as_deref(), plan.as_mut()).is_err()
            {
                return Disposition::IoError; // peer went away mid-response
            }
            request_idx += 1;
            if let Some(mode) = d.set_binary {
                binary = mode;
            }
            if d.shutdown {
                self.request_shutdown();
                return Disposition::Served;
            }
            if eof {
                return Disposition::Served;
            }
        }
    }

    /// Parses and answers one frame. Never panics outward: handler panics
    /// become a structured `internal` frame so the connection and listener
    /// both survive any single bad request.
    fn dispatch(&self, line: &str, binary: bool) -> Dispatch {
        let error_dispatch = |reply: ErrorReply, op: Option<&'static str>| Dispatch {
            header: reply.frame(),
            payload: None,
            op,
            points: 0,
            error: true,
            shutdown: false,
            set_binary: None,
        };
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(msg) => return error_dispatch(ErrorReply::bad_request(msg), None),
        };
        let op = request.op();
        let shutdown = matches!(request, Request::Shutdown);
        let set_binary = match request {
            Request::Format { binary } => Some(binary),
            _ => None,
        };
        match catch_unwind(AssertUnwindSafe(|| self.answer(&request, binary))) {
            Ok(Ok(answer)) => Dispatch {
                header: ok_frame(op, answer.fields),
                payload: answer.payload,
                op: Some(op),
                points: answer.points,
                error: false,
                shutdown,
                set_binary,
            },
            Ok(Err(reply)) => error_dispatch(reply, Some(op)),
            Err(_) => error_dispatch(ErrorReply::internal(), Some(op)),
        }
    }

    /// Computes a successful response's payload.
    fn answer(&self, request: &Request, binary: bool) -> Result<Answer, ErrorReply> {
        match request {
            Request::Sample { release, n, seed } => {
                if *n > self.config.max_sample_n {
                    return Err(ErrorReply::sample_cap(*n, self.config.max_sample_n));
                }
                let rel = self.registry.get(release).map_err(ErrorReply::unknown_release)?;
                let mut fields = vec![
                    ("release", Value::String(release.clone())),
                    ("n", Value::UInt(*n as u64)),
                    ("seed", Value::UInt(*seed)),
                ];
                let flat = rel.sample_flat(*n, *seed);
                let payload = if binary {
                    fields.push(("encoding", Value::String("binary".into())));
                    fields.push(("domain", Value::String(rel.domain_tag().into())));
                    fields.push(("lanes", Value::UInt(rel.point_lanes() as u64)));
                    Some(flat)
                } else {
                    let points =
                        crate::protocol::points_value(rel.domain_tag(), rel.point_lanes(), &flat)?;
                    fields.push(("points", points));
                    None
                };
                Ok(Answer { fields, points: *n as u64, payload })
            }
            Request::Query { release, probe } => {
                let rel = self.registry.get(release).map_err(ErrorReply::unknown_release)?;
                let mut fields = vec![("release", Value::String(release.clone()))];
                fields.extend(rel.query(probe).map_err(ErrorReply::bad_request)?);
                Ok(Answer::fields(fields))
            }
            Request::Cdf { release, x } => {
                let rel = self.registry.get(release).map_err(ErrorReply::unknown_release)?;
                Ok(Answer::fields(vec![
                    ("release", Value::String(release.clone())),
                    ("x", Value::Float(*x)),
                    ("value", Value::Float(rel.cdf(*x).map_err(ErrorReply::bad_request)?)),
                ]))
            }
            Request::Info { release } => Ok(Answer::fields(
                self.registry.get(release).map_err(ErrorReply::unknown_release)?.info_fields(),
            )),
            Request::List => {
                Ok(Answer::fields(vec![("releases", Value::Array(self.registry.summaries()))]))
            }
            Request::Stats => Ok(Answer::fields(self.stats.fields())),
            Request::Load { name, path } => {
                // Staging: read + parse + validate + leaf-CDF build all
                // happen here, before the registry is touched — a corrupt
                // or truncated file errors out with the previous release
                // still serving, and the insert below is one atomic map
                // swap under the write lock.
                let loaded = LoadedRelease::load(name, path).map_err(ErrorReply::bad_request)?;
                let summary = loaded.summary();
                let replaced = self.registry.insert(loaded);
                let mut fields = vec![
                    ("name", Value::String(name.clone())),
                    ("replaced", Value::Bool(replaced)),
                    ("release", summary),
                ];
                if let Some(snapshot) = &self.config.snapshot_path {
                    // Best-effort: the in-memory load already succeeded;
                    // a snapshot write failure is reported, not fatal.
                    match self.registry.write_snapshot(snapshot) {
                        Ok(()) => fields.push(("snapshot", Value::String(snapshot.clone()))),
                        Err(e) => fields.push(("snapshot_error", Value::String(e))),
                    }
                }
                Ok(Answer::fields(fields))
            }
            Request::Format { binary } => Ok(Answer::fields(vec![(
                "encoding",
                Value::String(if *binary { "binary" } else { "json" }.into()),
            )])),
            Request::Shutdown => Ok(Answer::fields(vec![("stopping", Value::Bool(true))])),
        }
    }
}

/// Sheds one over-capacity connection: best-effort `busy` frame under a
/// short write timeout (a peer that never reads must not stall the accept
/// loop), then close.
fn shed(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
    let mut stream = stream;
    let _ = writeln!(stream, "{}", busy_frame());
    let _ = stream.flush();
}
