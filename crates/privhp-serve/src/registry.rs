//! Named releases, shared read-only across connections.
//!
//! A [`LoadedRelease`] owns a parsed [`ReleaseFile`] plus its concrete
//! domain value, and answers every per-release op through the
//! [`Generator`] trait (via [`ReleaseFile::generator`]) — the same
//! trait-driven pipeline the CLI's `sample` path uses, with the same seed
//! derivation, so a server `sample` at seed `S` returns exactly the points
//! `privhp sample --seed S` prints for the same release.
//!
//! The [`Registry`] maps names to `Arc<LoadedRelease>`: handlers clone the
//! `Arc` out under a read lock and then work without any lock held, so a
//! slow `sample` never blocks other connections (or a concurrent hot
//! `load`, which takes the write lock only for the map insert).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{Generator, LeafCdf, TreeQuery, TreeSampler};
use privhp_domain::{HierarchicalDomain, Hypercube, Ipv4Space, Path, UnitInterval};
use privhp_dp::rng::rng_from_seed;
use serde::Value;

use crate::protocol::{points_value, Probe};

// One shared whitening constant is what makes server-side, CLI and
// in-process draws interchangeable; it lives next to `ReleaseFile`.
pub use privhp_core::release::SAMPLE_SEED_XOR;

/// The concrete domain value a release was built over.
#[derive(Debug, Clone)]
enum DomainKind {
    Interval(UnitInterval),
    Cube(Hypercube),
    Ipv4(Ipv4Space),
}

impl DomainKind {
    fn from_spec(spec: DomainSpec) -> Self {
        match spec {
            DomainSpec::Interval => DomainKind::Interval(UnitInterval::new()),
            DomainSpec::Cube { dim } => DomainKind::Cube(Hypercube::new(dim)),
            DomainSpec::Ipv4 => DomainKind::Ipv4(Ipv4Space::new()),
        }
    }
}

/// One release held by the server: the parsed file plus its domain, and
/// the lazily-built leaf CDF shared across sample requests (so repeated
/// `sample` calls don't rebuild the leaf list every request).
#[derive(Debug)]
pub struct LoadedRelease {
    name: String,
    release: ReleaseFile,
    domain: DomainKind,
    cdf: OnceLock<Arc<LeafCdf>>,
}

/// Samples through `dyn Generator` (one vtable hop, amortised by the batch
/// draw) into a flat row-major lane buffer — the buffer binary sample
/// frames ship verbatim and the JSON path renders.
fn sample_flat_for<D: HierarchicalDomain>(
    release: &ReleaseFile,
    domain: &D,
    cdf: Arc<LeafCdf>,
    n: usize,
    seed: u64,
) -> Vec<f64> {
    let sampler = TreeSampler::with_leaf_cdf(&release.tree, domain, cdf);
    let generator: &dyn Generator<D> = &sampler;
    let mut rng = rng_from_seed(seed ^ SAMPLE_SEED_XOR);
    let mut flat = Vec::with_capacity(n * generator.point_lanes());
    generator.sample_many_into(n, &mut rng, &mut flat);
    flat
}

impl LoadedRelease {
    /// Wraps an already-parsed release under a registry name.
    pub fn from_release(name: impl Into<String>, release: ReleaseFile) -> Self {
        let domain = DomainKind::from_spec(release.domain);
        Self { name: name.into(), release, domain, cdf: OnceLock::new() }
    }

    /// The release tree's leaf CDF, built on first use and shared by every
    /// subsequent sample request.
    fn leaf_cdf(&self) -> Arc<LeafCdf> {
        self.cdf.get_or_init(|| Arc::new(LeafCdf::build(&self.release.tree))).clone()
    }

    /// Reads and parses a release file from disk.
    pub fn load(name: &str, path: &str) -> Result<Self, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Ok(Self::from_release(name, ReleaseFile::from_json(&json)?))
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying release file.
    pub fn release(&self) -> &ReleaseFile {
        &self.release
    }

    /// The domain tag carried by binary sample headers:
    /// `interval` | `cube` | `ipv4`.
    pub fn domain_tag(&self) -> &'static str {
        match &self.domain {
            DomainKind::Interval(_) => "interval",
            DomainKind::Cube(_) => "cube",
            DomainKind::Ipv4(_) => "ipv4",
        }
    }

    /// Lanes per point in the flat sample encoding: 1 for interval, `dim`
    /// for cube, 1 for ipv4 (the lane holds the address as an integral
    /// `f64`).
    pub fn point_lanes(&self) -> usize {
        match &self.domain {
            DomainKind::Interval(_) | DomainKind::Ipv4(_) => 1,
            DomainKind::Cube(d) => d.dim(),
        }
    }

    /// Draws `n` points at `seed` into a flat row-major lane buffer
    /// ([`Self::point_lanes`] values per point) — the exact bytes a binary
    /// sample frame carries, and the buffer [`Self::sample_points`]
    /// renders, so the two encodings agree bit-for-bit by construction.
    /// A pure function of `(release bytes, n, seed)`.
    pub fn sample_flat(&self, n: usize, seed: u64) -> Vec<f64> {
        let cdf = self.leaf_cdf();
        match &self.domain {
            DomainKind::Interval(d) => sample_flat_for(&self.release, d, cdf, n, seed),
            DomainKind::Cube(d) => sample_flat_for(&self.release, d, cdf, n, seed),
            DomainKind::Ipv4(d) => sample_flat_for(&self.release, d, cdf, n, seed),
        }
    }

    /// Draws `n` points at `seed` rendered as JSON values; responses are a
    /// pure function of `(release bytes, n, seed)`, so equal requests are
    /// byte-identical.
    ///
    /// Interval points render as numbers, cube points as coordinate
    /// arrays, IPv4 points as dotted-quad strings.
    pub fn sample_points(&self, n: usize, seed: u64) -> Vec<Value> {
        let flat = self.sample_flat(n, seed);
        match points_value(self.domain_tag(), self.point_lanes(), &flat) {
            Ok(Value::Array(points)) => points,
            _ => unreachable!("sample_flat always yields whole rows of a known domain"),
        }
    }

    fn interval(&self) -> Result<&UnitInterval, String> {
        match &self.domain {
            DomainKind::Interval(d) => Ok(d),
            _ => Err(format!(
                "closed-form queries require an interval release ('{}' is {})",
                self.name,
                self.release.domain.describe()
            )),
        }
    }

    /// Answers a closed-form probe (interval releases only).
    pub fn query(&self, probe: &Probe) -> Result<Vec<(&'static str, Value)>, String> {
        let domain = self.interval()?;
        let q = TreeQuery::new(&self.release.tree, domain);
        match *probe {
            Probe::Range(a, b) => {
                if !(0.0..=1.0).contains(&a) || !(0.0..=1.0).contains(&b) || a > b {
                    return Err("range must satisfy 0 <= a <= b <= 1".into());
                }
                Ok(vec![("value", Value::Float(q.range_probability(a, b)))])
            }
            Probe::Point(x) => {
                let x = x.clamp(0.0, 1.0);
                // Descend to the release leaf whose cell contains x.
                let tree = &self.release.tree;
                let mut leaf = Path::root();
                while tree.is_internal(&leaf) {
                    leaf = domain.locate(&x, leaf.level() + 1);
                }
                Ok(vec![
                    ("leaf", Value::String(leaf.to_string())),
                    ("level", Value::UInt(leaf.level() as u64)),
                    ("mass", Value::Float(q.subdomain_probability(&leaf))),
                ])
            }
            Probe::Quantile(rank) => {
                if !(0.0..=1.0).contains(&rank) {
                    return Err("quantile rank must be in [0,1]".into());
                }
                Ok(vec![("value", Value::Float(q.quantile(rank)))])
            }
            Probe::Mean => Ok(vec![("value", Value::Float(q.mean()))]),
        }
    }

    /// CDF at `x` (interval releases only; `x` clamped to `[0,1]`).
    pub fn cdf(&self, x: f64) -> Result<f64, String> {
        let domain = self.interval()?;
        Ok(TreeQuery::new(&self.release.tree, domain).cdf(x.clamp(0.0, 1.0)))
    }

    /// Full metadata fields for the `info` response.
    pub fn info_fields(&self) -> Vec<(&'static str, Value)> {
        let tree = &self.release.tree;
        let config = &self.release.config;
        vec![
            ("release", Value::String(self.name.clone())),
            ("domain", Value::String(self.release.domain.describe())),
            ("epsilon", Value::Float(config.epsilon)),
            ("k", Value::UInt(config.k as u64)),
            ("l_star", Value::UInt(config.l_star as u64)),
            ("depth", Value::UInt(config.depth as u64)),
            ("sketch_rows", Value::UInt(config.sketch.depth as u64)),
            ("sketch_width", Value::UInt(config.sketch.width as u64)),
            ("tree_nodes", Value::UInt(tree.len() as u64)),
            ("leaves", Value::UInt(tree.leaves().len() as u64)),
            ("tree_depth", Value::UInt(tree.depth() as u64)),
            ("memory_words", Value::UInt(tree.memory_words() as u64)),
            ("mass", Value::Float(tree.root_count().unwrap_or(0.0))),
        ]
    }

    /// One-line summary for the `list` response.
    pub fn summary(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            ("domain".into(), Value::String(self.release.domain.describe())),
            ("epsilon".into(), Value::Float(self.release.config.epsilon)),
            ("k".into(), Value::UInt(self.release.config.k as u64)),
            ("tree_nodes".into(), Value::UInt(self.release.tree.len() as u64)),
        ])
    }
}

/// Name → release map shared by all connection handlers.
#[derive(Debug, Default)]
pub struct Registry {
    map: RwLock<HashMap<String, Arc<LoadedRelease>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a release; returns `true` if it replaced an existing one.
    pub fn insert(&self, release: LoadedRelease) -> bool {
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        map.insert(release.name().to_string(), Arc::new(release)).is_some()
    }

    /// Looks up a release by name.
    pub fn get(&self, name: &str) -> Result<Arc<LoadedRelease>, String> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        map.get(name).cloned().ok_or_else(|| {
            let mut names: Vec<&str> = map.keys().map(String::as_str).collect();
            names.sort_unstable();
            format!("unknown release '{name}' (loaded: [{}])", names.join(", "))
        })
    }

    /// Summaries of every release, sorted by name.
    pub fn summaries(&self) -> Vec<Value> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<&Arc<LoadedRelease>> = map.values().collect();
        entries.sort_unstable_by(|a, b| a.name().cmp(b.name()));
        entries.into_iter().map(|r| r.summary()).collect()
    }

    /// Number of loaded releases.
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_core::{PrivHp, PrivHpConfig};

    fn tiny_release() -> ReleaseFile {
        let data: Vec<f64> =
            (0..512).map(|i| ((i as f64 / 512.0).powi(2) * 0.999).min(0.999)).collect();
        let mut rng = rng_from_seed(3);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(3);
        let g = PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).unwrap();
        ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone())
    }

    #[test]
    fn sample_is_deterministic_and_matches_generator() {
        let rel = LoadedRelease::from_release("t", tiny_release());
        let a = rel.sample_points(32, 9);
        let b = rel.sample_points(32, 9);
        assert_eq!(a, b, "equal seeds must give identical draws");
        let c = rel.sample_points(32, 10);
        assert_ne!(a, c, "different seeds should differ");

        // The registry path must match a direct in-process generator draw.
        let domain = UnitInterval::new();
        let sampler = rel.release().generator(&domain);
        let mut rng = rng_from_seed(9 ^ SAMPLE_SEED_XOR);
        let direct = sampler.sample_many(32, &mut rng);
        for (v, x) in a.iter().zip(&direct) {
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn query_and_cdf_answer_on_interval() {
        let rel = LoadedRelease::from_release("t", tiny_release());
        let cdf = rel.cdf(0.5).unwrap();
        assert!((cdf - 0.707).abs() < 0.15, "CDF(0.5) = {cdf}");
        let fields = rel.query(&Probe::Range(0.0, 0.5)).unwrap();
        let v = fields[0].1.as_f64().unwrap();
        assert!((v - cdf).abs() < 1e-12);
        let point = rel.query(&Probe::Point(0.3)).unwrap();
        assert!(point.iter().any(|(k, _)| *k == "leaf"));
        let mass = point.iter().find(|(k, _)| *k == "mass").unwrap().1.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&mass));
        assert!(rel.query(&Probe::Quantile(2.0)).is_err());
        assert!(rel.query(&Probe::Range(0.5, 0.2)).is_err());
    }

    #[test]
    fn non_interval_queries_rejected() {
        let tiny = tiny_release();
        let mut cube = tiny.clone();
        cube.domain = DomainSpec::Cube { dim: 2 };
        let rel = LoadedRelease::from_release("c", cube);
        assert!(rel.cdf(0.5).unwrap_err().contains("interval"));
        assert!(rel.query(&Probe::Mean).unwrap_err().contains("interval"));
    }

    #[test]
    fn registry_lookup_and_replace() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        assert!(!reg.insert(LoadedRelease::from_release("a", tiny_release())));
        assert!(!reg.insert(LoadedRelease::from_release("b", tiny_release())));
        assert!(reg.insert(LoadedRelease::from_release("a", tiny_release())), "replace reported");
        assert_eq!(reg.len(), 2);
        assert!(reg.get("a").is_ok());
        let e = reg.get("zzz").unwrap_err();
        assert!(e.contains("unknown release") && e.contains("a, b"), "{e}");
        let names: Vec<String> = reg
            .summaries()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "b"]);
    }
}
