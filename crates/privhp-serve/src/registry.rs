//! Named releases, shared read-only across connections.
//!
//! A [`LoadedRelease`] owns a parsed [`ReleaseFile`] plus its concrete
//! domain value, and answers every per-release op through the
//! [`Generator`] trait (via [`ReleaseFile::generator`]) — the same
//! trait-driven pipeline the CLI's `sample` path uses, with the same seed
//! derivation, so a server `sample` at seed `S` returns exactly the points
//! `privhp sample --seed S` prints for the same release.
//!
//! The [`Registry`] maps names to `Arc<LoadedRelease>`: handlers clone the
//! `Arc` out under a read lock and then work without any lock held, so a
//! slow `sample` never blocks other connections (or a concurrent hot
//! `load`, which takes the write lock only for the map insert).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use privhp_core::release::{DomainSpec, ReleaseFile, ReleaseFormat};
use privhp_core::{Generator, LeafCdf, TreeQuery, TreeSampler};
use privhp_domain::{HierarchicalDomain, Hypercube, Ipv4Space, Path, UnitInterval};
use privhp_dp::rng::rng_from_seed;
use serde::Value;

use crate::protocol::{points_value, Probe};

// One shared whitening constant is what makes server-side, CLI and
// in-process draws interchangeable; it lives next to `ReleaseFile`.
pub use privhp_core::release::SAMPLE_SEED_XOR;

/// The concrete domain value a release was built over.
#[derive(Debug, Clone)]
enum DomainKind {
    Interval(UnitInterval),
    Cube(Hypercube),
    Ipv4(Ipv4Space),
}

impl DomainKind {
    fn from_spec(spec: DomainSpec) -> Self {
        match spec {
            DomainSpec::Interval => DomainKind::Interval(UnitInterval::new()),
            DomainSpec::Cube { dim } => DomainKind::Cube(Hypercube::new(dim)),
            DomainSpec::Ipv4 => DomainKind::Ipv4(Ipv4Space::new()),
        }
    }
}

/// One release held by the server: the parsed file plus its domain, and
/// the lazily-built leaf CDF shared across sample requests (so repeated
/// `sample` calls don't rebuild the leaf list every request).
#[derive(Debug)]
pub struct LoadedRelease {
    name: String,
    release: ReleaseFile,
    domain: DomainKind,
    cdf: OnceLock<Arc<LeafCdf>>,
    /// The file this release was loaded from, when it came from disk —
    /// what the registry snapshot records so a restarted server can
    /// reload the same set.
    source: Option<String>,
    /// The encoding the source file was detected as (JSON for in-process
    /// releases). Recorded in the registry snapshot for observability;
    /// reloads re-detect from the bytes.
    format: ReleaseFormat,
}

/// Samples through `dyn Generator` (one vtable hop, amortised by the batch
/// draw) into a flat row-major lane buffer — the buffer binary sample
/// frames ship verbatim and the JSON path renders.
fn sample_flat_for<D: HierarchicalDomain>(
    release: &ReleaseFile,
    domain: &D,
    cdf: Arc<LeafCdf>,
    n: usize,
    seed: u64,
) -> Vec<f64> {
    let sampler = TreeSampler::with_leaf_cdf(&release.tree, domain, cdf);
    let generator: &dyn Generator<D> = &sampler;
    let mut rng = rng_from_seed(seed ^ SAMPLE_SEED_XOR);
    let mut flat = Vec::with_capacity(n * generator.point_lanes());
    generator.sample_many_into(n, &mut rng, &mut flat);
    flat
}

impl LoadedRelease {
    /// Wraps an already-parsed release under a registry name.
    pub fn from_release(name: impl Into<String>, release: ReleaseFile) -> Self {
        let domain = DomainKind::from_spec(release.domain);
        Self {
            name: name.into(),
            release,
            domain,
            cdf: OnceLock::new(),
            source: None,
            format: ReleaseFormat::Json,
        }
    }

    /// The release tree's leaf CDF, built on first use and shared by every
    /// subsequent sample request.
    fn leaf_cdf(&self) -> Arc<LeafCdf> {
        self.cdf.get_or_init(|| Arc::new(LeafCdf::build(&self.release.tree))).clone()
    }

    /// Reads, parses and validates a release file from disk — either
    /// encoding, auto-detected from the bytes (the binary `.phpr` form
    /// skips the parse step entirely: its dense arena is decoded by bulk
    /// copy). The whole pipeline — read, decode, release validation,
    /// leaf-CDF build — runs here, *before* the caller touches any
    /// registry, so a truncated or corrupt file fails in staging and can
    /// never evict or corrupt a serving release. Failures name the
    /// offending path and the detected format. The source path and
    /// format are recorded for the registry snapshot.
    pub fn load(name: &str, path: &str) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let format = ReleaseFile::detect_format(&bytes);
        let release = match format {
            ReleaseFormat::Binary => ReleaseFile::from_binary(&bytes).map_err(|e| e.to_string()),
            ReleaseFormat::Json => std::str::from_utf8(&bytes)
                .map_err(|e| format!("not UTF-8: {e}"))
                .and_then(ReleaseFile::from_json),
        }
        .map_err(|e| format!("cannot load {path} as a {} release: {e}", format.describe()))?;
        let mut loaded = Self::from_release(name, release);
        loaded.source = Some(path.to_string());
        loaded.format = format;
        // Warm (and thereby validate) the leaf CDF in staging too: the
        // first sample request shouldn't pay the build, and a tree the
        // CDF builder chokes on should fail the load, not a request.
        let _ = loaded.leaf_cdf();
        Ok(loaded)
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The file this release was loaded from (`None` for in-process
    /// releases that never touched disk).
    pub fn source_path(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// The encoding the source file was detected as (JSON for in-process
    /// releases).
    pub fn source_format(&self) -> ReleaseFormat {
        self.format
    }

    /// The underlying release file.
    pub fn release(&self) -> &ReleaseFile {
        &self.release
    }

    /// The domain tag carried by binary sample headers:
    /// `interval` | `cube` | `ipv4`.
    pub fn domain_tag(&self) -> &'static str {
        match &self.domain {
            DomainKind::Interval(_) => "interval",
            DomainKind::Cube(_) => "cube",
            DomainKind::Ipv4(_) => "ipv4",
        }
    }

    /// Lanes per point in the flat sample encoding: 1 for interval, `dim`
    /// for cube, 1 for ipv4 (the lane holds the address as an integral
    /// `f64`).
    pub fn point_lanes(&self) -> usize {
        match &self.domain {
            DomainKind::Interval(_) | DomainKind::Ipv4(_) => 1,
            DomainKind::Cube(d) => d.dim(),
        }
    }

    /// Draws `n` points at `seed` into a flat row-major lane buffer
    /// ([`Self::point_lanes`] values per point) — the exact bytes a binary
    /// sample frame carries, and the buffer [`Self::sample_points`]
    /// renders, so the two encodings agree bit-for-bit by construction.
    /// A pure function of `(release bytes, n, seed)`.
    pub fn sample_flat(&self, n: usize, seed: u64) -> Vec<f64> {
        let cdf = self.leaf_cdf();
        match &self.domain {
            DomainKind::Interval(d) => sample_flat_for(&self.release, d, cdf, n, seed),
            DomainKind::Cube(d) => sample_flat_for(&self.release, d, cdf, n, seed),
            DomainKind::Ipv4(d) => sample_flat_for(&self.release, d, cdf, n, seed),
        }
    }

    /// Draws `n` points at `seed` rendered as JSON values; responses are a
    /// pure function of `(release bytes, n, seed)`, so equal requests are
    /// byte-identical.
    ///
    /// Interval points render as numbers, cube points as coordinate
    /// arrays, IPv4 points as dotted-quad strings.
    pub fn sample_points(&self, n: usize, seed: u64) -> Vec<Value> {
        let flat = self.sample_flat(n, seed);
        match points_value(self.domain_tag(), self.point_lanes(), &flat) {
            Ok(Value::Array(points)) => points,
            _ => unreachable!("sample_flat always yields whole rows of a known domain"),
        }
    }

    fn interval(&self) -> Result<&UnitInterval, String> {
        match &self.domain {
            DomainKind::Interval(d) => Ok(d),
            _ => Err(format!(
                "closed-form queries require an interval release ('{}' is {})",
                self.name,
                self.release.domain.describe()
            )),
        }
    }

    /// Answers a closed-form probe (interval releases only).
    pub fn query(&self, probe: &Probe) -> Result<Vec<(&'static str, Value)>, String> {
        let domain = self.interval()?;
        let q = TreeQuery::new(&self.release.tree, domain);
        match *probe {
            Probe::Range(a, b) => {
                if !(0.0..=1.0).contains(&a) || !(0.0..=1.0).contains(&b) || a > b {
                    return Err("range must satisfy 0 <= a <= b <= 1".into());
                }
                Ok(vec![("value", Value::Float(q.range_probability(a, b)))])
            }
            Probe::Point(x) => {
                let x = x.clamp(0.0, 1.0);
                // Descend to the release leaf whose cell contains x.
                let tree = &self.release.tree;
                let mut leaf = Path::root();
                while tree.is_internal(&leaf) {
                    leaf = domain.locate(&x, leaf.level() + 1);
                }
                Ok(vec![
                    ("leaf", Value::String(leaf.to_string())),
                    ("level", Value::UInt(leaf.level() as u64)),
                    ("mass", Value::Float(q.subdomain_probability(&leaf))),
                ])
            }
            Probe::Quantile(rank) => {
                if !(0.0..=1.0).contains(&rank) {
                    return Err("quantile rank must be in [0,1]".into());
                }
                Ok(vec![("value", Value::Float(q.quantile(rank)))])
            }
            Probe::Mean => Ok(vec![("value", Value::Float(q.mean()))]),
        }
    }

    /// CDF at `x` (interval releases only; `x` clamped to `[0,1]`).
    pub fn cdf(&self, x: f64) -> Result<f64, String> {
        let domain = self.interval()?;
        Ok(TreeQuery::new(&self.release.tree, domain).cdf(x.clamp(0.0, 1.0)))
    }

    /// Full metadata fields for the `info` response.
    pub fn info_fields(&self) -> Vec<(&'static str, Value)> {
        let tree = &self.release.tree;
        let config = &self.release.config;
        vec![
            ("release", Value::String(self.name.clone())),
            ("domain", Value::String(self.release.domain.describe())),
            ("epsilon", Value::Float(config.epsilon)),
            ("k", Value::UInt(config.k as u64)),
            ("l_star", Value::UInt(config.l_star as u64)),
            ("depth", Value::UInt(config.depth as u64)),
            ("sketch_rows", Value::UInt(config.sketch.depth as u64)),
            ("sketch_width", Value::UInt(config.sketch.width as u64)),
            ("tree_nodes", Value::UInt(tree.len() as u64)),
            ("leaves", Value::UInt(tree.leaves().len() as u64)),
            ("tree_depth", Value::UInt(tree.depth() as u64)),
            ("memory_words", Value::UInt(tree.memory_words() as u64)),
            ("mass", Value::Float(tree.root_count().unwrap_or(0.0))),
        ]
    }

    /// One-line summary for the `list` response.
    pub fn summary(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            ("domain".into(), Value::String(self.release.domain.describe())),
            ("epsilon".into(), Value::Float(self.release.config.epsilon)),
            ("k".into(), Value::UInt(self.release.config.k as u64)),
            ("tree_nodes".into(), Value::UInt(self.release.tree.len() as u64)),
        ])
    }
}

/// Name → release map shared by all connection handlers.
#[derive(Debug, Default)]
pub struct Registry {
    map: RwLock<HashMap<String, Arc<LoadedRelease>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a release; returns `true` if it replaced an existing one.
    pub fn insert(&self, release: LoadedRelease) -> bool {
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        map.insert(release.name().to_string(), Arc::new(release)).is_some()
    }

    /// Looks up a release by name.
    pub fn get(&self, name: &str) -> Result<Arc<LoadedRelease>, String> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        map.get(name).cloned().ok_or_else(|| {
            let mut names: Vec<&str> = map.keys().map(String::as_str).collect();
            names.sort_unstable();
            format!("unknown release '{name}' (loaded: [{}])", names.join(", "))
        })
    }

    /// Summaries of every release, sorted by name.
    pub fn summaries(&self) -> Vec<Value> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<&Arc<LoadedRelease>> = map.values().collect();
        entries.sort_unstable_by(|a, b| a.name().cmp(b.name()));
        entries.into_iter().map(|r| r.summary()).collect()
    }

    /// Number of loaded releases.
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The snapshot document:
    /// `{"releases":[{"name":..,"path":..,"format":..},..]}` listing
    /// every release that came from disk, sorted by name. The `format`
    /// field records the encoding detected at load time (restores
    /// re-detect from the bytes, so the field is informational and older
    /// snapshots without it restore fine). Releases without a source
    /// path (built in-process) cannot be reloaded by path and are
    /// omitted.
    pub fn snapshot_value(&self) -> Value {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<(&str, &str, ReleaseFormat)> = map
            .values()
            .filter_map(|r| r.source_path().map(|p| (r.name(), p, r.source_format())))
            .collect();
        entries.sort_unstable_by_key(|&(name, path, _)| (name, path));
        Value::Object(vec![(
            "releases".into(),
            Value::Array(
                entries
                    .into_iter()
                    .map(|(name, path, format)| {
                        Value::Object(vec![
                            ("name".into(), Value::String(name.into())),
                            ("path".into(), Value::String(path.into())),
                            ("format".into(), Value::String(format.describe().into())),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Writes the registry snapshot crash-safely: the document goes to a
    /// sibling temp file first and is renamed over `path`, so a crash
    /// mid-write leaves either the old snapshot or the new one — never a
    /// torn file.
    pub fn write_snapshot(&self, path: &str) -> Result<(), String> {
        let doc = serde_json::value_to_string(&self.snapshot_value());
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{doc}\n"))
            .map_err(|e| format!("cannot write snapshot {tmp}: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("cannot publish snapshot {path}: {e}"))
    }

    /// Loads every release named by a snapshot written by
    /// [`Registry::write_snapshot`]. Each release stages fully (parse +
    /// validate + leaf CDF) before its insert.
    ///
    /// Degraded boot is deliberate: a snapshot entry whose release file
    /// has since been deleted or corrupted is *skipped* — recorded in
    /// [`SnapshotRestore::skipped`] with its error — rather than
    /// aborting the whole restore, so one rotted file can't keep a
    /// server (or a restarted cluster shard) from serving everything
    /// else it owns. Only document-level damage — unreadable snapshot,
    /// invalid JSON, a torn or shapeless document — is a hard `Err`,
    /// because then nothing in the snapshot can be trusted.
    pub fn restore_snapshot(&self, path: &str) -> Result<SnapshotRestore, String> {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot {path}: {e}"))?;
        let v = serde_json::parse_value_str(doc.trim())
            .map_err(|e| format!("snapshot {path} is not valid JSON: {e}"))?;
        let releases = v
            .get("releases")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("snapshot {path} has no 'releases' array"))?;
        let mut outcome = SnapshotRestore { restored: 0, skipped: Vec::new() };
        for entry in releases {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("snapshot {path}: entry missing 'name'"))?;
            let file = entry
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("snapshot {path}: entry missing 'path'"))?;
            match LoadedRelease::load(name, file) {
                Ok(release) => {
                    self.insert(release);
                    outcome.restored += 1;
                }
                Err(e) => outcome.skipped.push((name.to_string(), e)),
            }
        }
        Ok(outcome)
    }
}

/// The outcome of a [`Registry::restore_snapshot`]: how many releases
/// came back, and which entries were skipped (with why) because their
/// release files rotted underneath the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRestore {
    /// Releases successfully staged and inserted.
    pub restored: usize,
    /// `(name, error)` for each entry whose release file could not be
    /// loaded — deleted, truncated, or corrupted since the snapshot.
    pub skipped: Vec<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_core::{PrivHp, PrivHpConfig};

    fn tiny_release() -> ReleaseFile {
        let data: Vec<f64> =
            (0..512).map(|i| ((i as f64 / 512.0).powi(2) * 0.999).min(0.999)).collect();
        let mut rng = rng_from_seed(3);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(3);
        let g = PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).unwrap();
        ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone())
    }

    #[test]
    fn sample_is_deterministic_and_matches_generator() {
        let rel = LoadedRelease::from_release("t", tiny_release());
        let a = rel.sample_points(32, 9);
        let b = rel.sample_points(32, 9);
        assert_eq!(a, b, "equal seeds must give identical draws");
        let c = rel.sample_points(32, 10);
        assert_ne!(a, c, "different seeds should differ");

        // The registry path must match a direct in-process generator draw.
        let domain = UnitInterval::new();
        let sampler = rel.release().generator(&domain);
        let mut rng = rng_from_seed(9 ^ SAMPLE_SEED_XOR);
        let direct = sampler.sample_many(32, &mut rng);
        for (v, x) in a.iter().zip(&direct) {
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn query_and_cdf_answer_on_interval() {
        let rel = LoadedRelease::from_release("t", tiny_release());
        let cdf = rel.cdf(0.5).unwrap();
        assert!((cdf - 0.707).abs() < 0.15, "CDF(0.5) = {cdf}");
        let fields = rel.query(&Probe::Range(0.0, 0.5)).unwrap();
        let v = fields[0].1.as_f64().unwrap();
        assert!((v - cdf).abs() < 1e-12);
        let point = rel.query(&Probe::Point(0.3)).unwrap();
        assert!(point.iter().any(|(k, _)| *k == "leaf"));
        let mass = point.iter().find(|(k, _)| *k == "mass").unwrap().1.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&mass));
        assert!(rel.query(&Probe::Quantile(2.0)).is_err());
        assert!(rel.query(&Probe::Range(0.5, 0.2)).is_err());
    }

    #[test]
    fn non_interval_queries_rejected() {
        let tiny = tiny_release();
        let mut cube = tiny.clone();
        cube.domain = DomainSpec::Cube { dim: 2 };
        let rel = LoadedRelease::from_release("c", cube);
        assert!(rel.cdf(0.5).unwrap_err().contains("interval"));
        assert!(rel.query(&Probe::Mean).unwrap_err().contains("interval"));
    }

    #[test]
    fn registry_lookup_and_replace() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        assert!(!reg.insert(LoadedRelease::from_release("a", tiny_release())));
        assert!(!reg.insert(LoadedRelease::from_release("b", tiny_release())));
        assert!(reg.insert(LoadedRelease::from_release("a", tiny_release())), "replace reported");
        assert_eq!(reg.len(), 2);
        assert!(reg.get("a").is_ok());
        let e = reg.get("zzz").unwrap_err();
        assert!(e.contains("unknown release") && e.contains("a, b"), "{e}");
        let names: Vec<String> = reg
            .summaries()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    /// A scratch directory removed on drop, so test files never leak.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("privhp-registry-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }

        fn path(&self, file: &str) -> String {
            self.0.join(file).to_string_lossy().into_owned()
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn load_records_source_and_rejects_corrupt_files_in_staging() {
        let scratch = Scratch::new("staging");
        let good = scratch.path("good.json");
        std::fs::write(&good, tiny_release().to_json()).unwrap();

        let reg = Registry::new();
        reg.insert(LoadedRelease::load("demo", &good).unwrap());
        assert_eq!(reg.get("demo").unwrap().source_path(), Some(good.as_str()));
        let before = reg.get("demo").unwrap().sample_points(8, 1);

        // A truncated file fails in staging: the registry is untouched and
        // the previous release keeps serving identical bytes.
        let corrupt = scratch.path("corrupt.json");
        std::fs::write(&corrupt, &tiny_release().to_json()[..40]).unwrap();
        assert!(LoadedRelease::load("demo", &corrupt).is_err());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("demo").unwrap().sample_points(8, 1), before);
    }

    #[test]
    fn binary_release_serves_identical_bytes_to_its_json_twin() {
        let scratch = Scratch::new("binary-twin");
        let release = tiny_release();
        let json = scratch.path("twin.json");
        let phpr = scratch.path("twin.phpr");
        std::fs::write(&json, release.to_json()).unwrap();
        std::fs::write(&phpr, release.to_binary()).unwrap();

        let from_json = LoadedRelease::load("j", &json).unwrap();
        let from_binary = LoadedRelease::load("b", &phpr).unwrap();
        assert_eq!(from_json.source_format(), ReleaseFormat::Json);
        assert_eq!(from_binary.source_format(), ReleaseFormat::Binary);
        assert_eq!(
            from_json.sample_points(64, 11),
            from_binary.sample_points(64, 11),
            "both encodings must serve bit-identical draws"
        );
        assert_eq!(from_json.cdf(0.37).unwrap(), from_binary.cdf(0.37).unwrap());
    }

    #[test]
    fn load_errors_name_the_file_and_detected_format() {
        let scratch = Scratch::new("load-errors");
        let bad_json = scratch.path("bad.json");
        std::fs::write(&bad_json, "{\"version\":").unwrap();
        let e = LoadedRelease::load("x", &bad_json).unwrap_err();
        assert!(e.contains(&bad_json), "names the path: {e}");
        assert!(e.contains("as a json release"), "names the format: {e}");

        // A truncated binary file: magic survives, so the detected
        // format is binary and the error says so.
        let bad_phpr = scratch.path("bad.phpr");
        std::fs::write(&bad_phpr, &tiny_release().to_binary()[..64]).unwrap();
        let e = LoadedRelease::load("x", &bad_phpr).unwrap_err();
        assert!(e.contains(&bad_phpr), "names the path: {e}");
        assert!(e.contains("as a binary release"), "names the format: {e}");

        let missing = scratch.path("missing.json");
        let e = LoadedRelease::load("x", &missing).unwrap_err();
        assert!(e.contains(&missing), "read errors name the path too: {e}");
    }

    #[test]
    fn snapshot_records_detected_format() {
        let scratch = Scratch::new("snapshot-format");
        let release = tiny_release();
        std::fs::write(scratch.path("a.json"), release.to_json()).unwrap();
        std::fs::write(scratch.path("b.phpr"), release.to_binary()).unwrap();
        let reg = Registry::new();
        reg.insert(LoadedRelease::load("a", &scratch.path("a.json")).unwrap());
        reg.insert(LoadedRelease::load("b", &scratch.path("b.phpr")).unwrap());

        let doc = serde_json::value_to_string(&reg.snapshot_value());
        assert!(doc.contains("\"format\":\"json\""), "{doc}");
        assert!(doc.contains("\"format\":\"binary\""), "{doc}");

        // Restore re-detects from the bytes, so both encodings come back.
        let snap = scratch.path("registry.snapshot");
        reg.write_snapshot(&snap).unwrap();
        let fresh = Registry::new();
        assert_eq!(fresh.restore_snapshot(&snap).unwrap().restored, 2);
        assert_eq!(fresh.get("b").unwrap().source_format(), ReleaseFormat::Binary);
    }

    #[test]
    fn snapshot_round_trips_and_omits_sourceless_releases() {
        let scratch = Scratch::new("snapshot");
        for file in ["a.json", "b.json"] {
            std::fs::write(scratch.path(file), tiny_release().to_json()).unwrap();
        }
        let reg = Registry::new();
        reg.insert(LoadedRelease::load("b", &scratch.path("b.json")).unwrap());
        reg.insert(LoadedRelease::load("a", &scratch.path("a.json")).unwrap());
        // In-process release without a source path: not snapshot-able.
        reg.insert(LoadedRelease::from_release("mem", tiny_release()));

        let snap = scratch.path("registry.snapshot");
        reg.write_snapshot(&snap).unwrap();
        let doc = std::fs::read_to_string(&snap).unwrap();
        assert!(doc.starts_with("{\"releases\":[{\"name\":\"a\""), "sorted by name: {doc}");
        assert!(!doc.contains("mem"), "sourceless releases are omitted: {doc}");
        assert!(!std::path::Path::new(&format!("{snap}.tmp")).exists(), "temp file renamed away");

        // A restarted server restores the same set (minus `mem`) and
        // serves identical bytes.
        let fresh = Registry::new();
        let outcome = fresh.restore_snapshot(&snap).unwrap();
        assert_eq!(outcome.restored, 2);
        assert!(outcome.skipped.is_empty());
        assert_eq!(fresh.len(), 2);
        assert_eq!(
            fresh.get("a").unwrap().sample_points(16, 7),
            reg.get("a").unwrap().sample_points(16, 7),
        );

        // A torn snapshot is a clean error, not a partial load.
        let torn = scratch.path("torn.snapshot");
        std::fs::write(&torn, &doc[..doc.len() / 2]).unwrap();
        assert!(Registry::new().restore_snapshot(&torn).is_err());
    }

    #[test]
    fn restore_skips_rotted_entries_and_keeps_booting() {
        let scratch = Scratch::new("degraded-boot");
        for file in ["keep.json", "deleted.json", "corrupt.json"] {
            std::fs::write(scratch.path(file), tiny_release().to_json()).unwrap();
        }
        let reg = Registry::new();
        reg.insert(LoadedRelease::load("keep", &scratch.path("keep.json")).unwrap());
        reg.insert(LoadedRelease::load("gone", &scratch.path("deleted.json")).unwrap());
        reg.insert(LoadedRelease::load("rot", &scratch.path("corrupt.json")).unwrap());
        let snap = scratch.path("registry.snapshot");
        reg.write_snapshot(&snap).unwrap();

        // Rot the world underneath the snapshot: one file deleted, one
        // truncated mid-document.
        std::fs::remove_file(scratch.path("deleted.json")).unwrap();
        let body = tiny_release().to_json();
        std::fs::write(scratch.path("corrupt.json"), &body[..body.len() / 3]).unwrap();

        // The restore must not abort: the surviving release boots, the
        // rotted entries are reported, nothing panics.
        let fresh = Registry::new();
        let outcome = fresh.restore_snapshot(&snap).unwrap();
        assert_eq!(outcome.restored, 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(
            fresh.get("keep").unwrap().sample_points(8, 5),
            reg.get("keep").unwrap().sample_points(8, 5),
            "the survivor serves identical bytes"
        );
        let skipped: Vec<&str> = outcome.skipped.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(skipped, ["gone", "rot"], "both rotted entries reported by name");
        for (_, why) in &outcome.skipped {
            assert!(!why.is_empty(), "each skip carries its load error");
        }
    }
}
