//! Deterministic fault injection for the serving stack.
//!
//! When a server is **armed** (`--fault-seed N` or the
//! [`FAULT_SEED_ENV`] environment variable), every accepted connection
//! derives a [`FaultPlan`] from `(seed, connection index)` — a pure
//! function, so a fixed seed plus a fixed connection order replays the
//! exact same fault schedule run after run. The plan picks one
//! [`FaultKind`] per connection (two out of eight schedule slots are
//! clean) and a request index at which it fires, so a connection can make
//! partial progress before the fault lands.
//!
//! Fault kinds (six, spanning the transport failure modes a hostile
//! network produces):
//!
//! | kind | effect | client-visible outcome |
//! |------|--------|------------------------|
//! | [`FaultKind::TornWrite`] | response split into ≤7-byte writes with flushes | none — bytes identical, only fragmentation |
//! | [`FaultKind::Trickle`] | first bytes of the response dribbled one per ~1 ms | slow but complete response |
//! | [`FaultKind::DelayRead`] | server sleeps before reading the request | delayed but complete response |
//! | [`FaultKind::TruncateHeader`] | response line torn mid-JSON, connection closed | truncated frame (no newline), then EOF |
//! | [`FaultKind::TruncatePayload`] | binary payload torn mid-`f64`s, connection closed | short payload read, then EOF |
//! | [`FaultKind::Reset`] | connection closed before reading the request | EOF/reset with no response |
//!
//! Faults only ever corrupt **transport**, never semantics: a torn or
//! trickled response carries exactly the bytes the clean path would have
//! sent, and a truncated response is always a strict prefix that cannot
//! parse as a different complete frame (clients detect the missing
//! newline / short payload). Combined with seeded — hence idempotent —
//! `sample`/`query` requests, this is what makes client retries safe to
//! assert bit-identical against a fault-free run.
//!
//! The write-side faults apply through [`FaultWriter`], a thin `Write`
//! wrapper the connection loop threads every response through; when the
//! server is unarmed the wrapper holds no plan and every call is a single
//! branch in front of the underlying stream — zero cost on the hot path.

use std::io::Write;
use std::time::Duration;

use privhp_dp::rng::mix64;

/// Environment variable that arms fault injection when `--fault-seed` is
/// not given (the CLI flag wins when both are set).
pub const FAULT_SEED_ENV: &str = "PRIVHP_FAULT_SEED";

/// Reads [`FAULT_SEED_ENV`], returning its parsed value when set.
/// A set-but-unparseable value is an error (a typo must not silently
/// disarm a chaos run).
pub fn seed_from_env() -> Result<Option<u64>, String> {
    match std::env::var(FAULT_SEED_ENV) {
        Ok(s) => s
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{FAULT_SEED_ENV}='{s}' is not a non-negative integer")),
        Err(_) => Ok(None),
    }
}

/// One injected transport fault. See the module docs for the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Split response writes into tiny chunks with a flush between each
    /// (same bytes, hostile fragmentation).
    TornWrite,
    /// Dribble the first response bytes one at a time with short sleeps
    /// (slow-loris from the server side; bounded, then full speed).
    Trickle,
    /// Sleep before reading the request (a stalled upstream).
    DelayRead,
    /// Tear the response header line mid-JSON and close the connection.
    TruncateHeader,
    /// Deliver the header, then tear the binary payload and close.
    TruncatePayload,
    /// Close the connection before even reading the request.
    Reset,
}

impl FaultKind {
    /// Whether this kind makes the in-flight request fail (truncations and
    /// resets) as opposed to merely slowing or fragmenting it.
    pub fn is_fatal(self) -> bool {
        matches!(self, FaultKind::TruncateHeader | FaultKind::TruncatePayload | FaultKind::Reset)
    }
}

/// The 8-slot schedule one connection index maps into: every fault kind
/// appears once, plus two clean slots, so any window of consecutive
/// connections mixes clean and faulty service and a retrying client
/// converges quickly.
const SCHEDULE: [Option<FaultKind>; 8] = [
    Some(FaultKind::TornWrite),
    Some(FaultKind::TruncateHeader),
    None,
    Some(FaultKind::Trickle),
    Some(FaultKind::Reset),
    None,
    Some(FaultKind::DelayRead),
    Some(FaultKind::TruncatePayload),
];

/// How many response bytes [`FaultKind::Trickle`] dribbles (then the rest
/// of the response goes out at full speed, keeping the injected delay
/// bounded at `TRICKLE_BYTES * TRICKLE_SLEEP`).
const TRICKLE_BYTES: usize = 48;
const TRICKLE_SLEEP: Duration = Duration::from_millis(1);

/// How long [`FaultKind::DelayRead`] stalls before reading the request.
const READ_DELAY: Duration = Duration::from_millis(40);

/// Chunk size of [`FaultKind::TornWrite`] fragments (coprime with the
/// 8-byte `f64` lanes of binary payloads, so tears never align with lane
/// boundaries).
const TORN_CHUNK: usize = 7;

/// What the connection loop should do before reading the next request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAction {
    /// Read normally.
    Proceed,
    /// Sleep this long first (injected upstream stall).
    Delay(Duration),
    /// Drop the connection without reading.
    Reset,
}

/// The seeded fault schedule of one connection: which [`FaultKind`] fires,
/// and on which request of the connection.
#[derive(Debug)]
pub struct FaultPlan {
    kind: FaultKind,
    /// Request index (0-based, per connection) the fault fires on.
    fire_at: u64,
    /// Requests dispatched so far (advanced by [`FaultPlan::begin_response`]).
    response_idx: u64,
    /// Whether a response write is currently in flight (set by
    /// `begin_response`, so faults never fire between responses).
    in_response: bool,
    /// Remaining write allowance for the truncating kinds; `None` until
    /// the truncation phase arms.
    budget: Option<usize>,
    /// Bytes trickled so far ([`FaultKind::Trickle`]).
    trickled: usize,
}

impl FaultPlan {
    /// Derives the plan for connection `conn_index` under `seed` — a pure
    /// function of its arguments. Returns `None` for the clean slots.
    pub fn derive(seed: u64, conn_index: u64) -> Option<Self> {
        let h = mix64(seed ^ mix64(conn_index.wrapping_add(0xC0A5)));
        let kind = SCHEDULE[(h % 8) as usize]?;
        // Fire on the first or second request: oneshot connections see
        // immediate faults, multi-request connections get partial progress.
        let fire_at = (h >> 8) % 2;
        // Where a truncation tears, in bytes past the phase start. Kept
        // small so header tears land mid-JSON on realistic frames.
        let offset = 1 + ((h >> 16) % 40) as usize;
        let budget = match kind {
            // The header tear arms immediately; the payload tear arms at
            // `begin_payload` (header passes untouched).
            FaultKind::TruncateHeader => Some(offset),
            _ => None,
        };
        Some(Self { kind, fire_at, response_idx: 0, in_response: false, budget, trickled: 0 })
    }

    /// The planned fault kind.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// What to do before reading request `request_idx` on this connection.
    pub fn read_action(&self, request_idx: u64) -> ReadAction {
        if request_idx != self.fire_at {
            return ReadAction::Proceed;
        }
        match self.kind {
            FaultKind::Reset => ReadAction::Reset,
            FaultKind::DelayRead => ReadAction::Delay(READ_DELAY),
            _ => ReadAction::Proceed,
        }
    }

    /// Marks the start of a response; write faults apply only between
    /// this call and [`FaultPlan::end_response`].
    pub fn begin_response(&mut self) {
        self.in_response = true;
    }

    /// Marks the end of a response; bumps the per-connection request index.
    pub fn end_response(&mut self) {
        self.in_response = false;
        self.response_idx += 1;
    }

    /// Marks the start of a binary payload within the current response:
    /// the payload-truncating kind arms its tear budget here, so the
    /// header line always arrives intact first.
    pub fn begin_payload(&mut self) {
        if self.firing() && self.kind == FaultKind::TruncatePayload && self.budget.is_none() {
            // Tear inside the first few lanes: past the 8-byte length
            // prefix, never lane-aligned (offset is in [1, 40], and 7·k+1
            // style offsets land mid-f64 most of the time by design).
            let h = mix64(self.fire_at.wrapping_add(0xF417) ^ self.response_idx);
            self.budget = Some(8 + 1 + (h % 39) as usize);
        }
    }

    /// Whether the current response is the one the fault fires on.
    fn firing(&self) -> bool {
        self.in_response && self.response_idx == self.fire_at
    }
}

/// The error a torn connection surfaces to the response-writing code;
/// the connection loop treats it like any peer-side write failure.
fn torn() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "injected fault: connection torn")
}

/// A thin `Write` wrapper applying a connection's write-side faults.
/// With no plan (the server unarmed, or a clean schedule slot) every call
/// forwards directly — one branch of overhead.
pub struct FaultWriter<'a, W: Write> {
    inner: &'a mut W,
    plan: Option<&'a mut FaultPlan>,
}

impl<'a, W: Write> FaultWriter<'a, W> {
    /// Wraps `inner`; `plan` is the connection's schedule, if any.
    pub fn new(inner: &'a mut W, mut plan: Option<&'a mut FaultPlan>) -> Self {
        if let Some(p) = plan.as_deref_mut() {
            p.begin_response();
        }
        Self { inner, plan }
    }

    /// Signals that subsequent writes are a binary payload (arms the
    /// payload-truncating fault).
    pub fn begin_payload(&mut self) {
        if let Some(p) = self.plan.as_deref_mut() {
            p.begin_payload();
        }
    }

    /// Finishes the response: advances the plan's request index.
    pub fn finish(self) {
        if let Some(p) = self.plan {
            p.end_response();
        }
    }
}

impl<W: Write> Write for FaultWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let Some(plan) = self.plan.as_deref_mut() else {
            return self.inner.write(buf);
        };
        if !plan.firing() || buf.is_empty() {
            return self.inner.write(buf);
        }
        match plan.kind {
            FaultKind::TornWrite => {
                // Same bytes, hostile fragmentation: tiny writes, each
                // flushed so Nagle-free sockets ship them separately.
                for chunk in buf.chunks(TORN_CHUNK) {
                    self.inner.write_all(chunk)?;
                    self.inner.flush()?;
                }
                Ok(buf.len())
            }
            FaultKind::Trickle => {
                if plan.trickled < TRICKLE_BYTES {
                    self.inner.write_all(&buf[..1])?;
                    self.inner.flush()?;
                    plan.trickled += 1;
                    std::thread::sleep(TRICKLE_SLEEP);
                    Ok(1)
                } else {
                    self.inner.write(buf)
                }
            }
            FaultKind::TruncateHeader | FaultKind::TruncatePayload => match plan.budget {
                Some(0) => Err(torn()),
                Some(remaining) => {
                    let n = remaining.min(buf.len());
                    self.inner.write_all(&buf[..n])?;
                    self.inner.flush()?;
                    plan.budget = Some(remaining - n);
                    Ok(n)
                }
                // TruncatePayload before `begin_payload` (or a JSON-only
                // response that never ships a payload): pass through.
                None => self.inner.write(buf),
            },
            // Read-side kinds: writes pass through untouched.
            FaultKind::DelayRead | FaultKind::Reset => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_covers_every_kind() {
        let mut seen = Vec::new();
        let mut clean = 0usize;
        for idx in 0..64 {
            let a = FaultPlan::derive(7, idx);
            let b = FaultPlan::derive(7, idx);
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.kind, y.kind, "conn {idx}");
                    assert_eq!(x.fire_at, y.fire_at, "conn {idx}");
                    if !seen.contains(&x.kind) {
                        seen.push(x.kind);
                    }
                    assert!(x.fire_at < 2);
                }
                (None, None) => clean += 1,
                _ => panic!("derivation not deterministic at conn {idx}"),
            }
        }
        assert_eq!(seen.len(), 6, "all six fault kinds appear over 64 connections: {seen:?}");
        assert!(clean > 0, "clean slots appear too");
        // Different seeds give different schedules.
        let diff = (0..64).any(|i| {
            FaultPlan::derive(1, i).map(|p| p.kind) != FaultPlan::derive(2, i).map(|p| p.kind)
        });
        assert!(diff, "seed must influence the schedule");
    }

    #[test]
    fn torn_and_trickle_deliver_identical_bytes() {
        for idx in 0..64 {
            let Some(mut plan) = FaultPlan::derive(3, idx) else { continue };
            if plan.kind.is_fatal() || plan.kind == FaultKind::DelayRead {
                continue;
            }
            let fire_at = plan.fire_at;
            let mut out = Vec::new();
            for _ in 0..=fire_at {
                let mut w = FaultWriter::new(&mut out, Some(&mut plan));
                w.write_all(b"{\"ok\":true,\"op\":\"sample\"}\n").unwrap();
                w.begin_payload();
                w.write_all(&[0xAB; 64]).unwrap();
                w.flush().unwrap();
                w.finish();
            }
            let mut expect = Vec::new();
            for _ in 0..=fire_at {
                expect.extend_from_slice(b"{\"ok\":true,\"op\":\"sample\"}\n");
                expect.extend_from_slice(&[0xAB; 64]);
            }
            assert_eq!(out, expect, "conn {idx} ({:?}) altered the byte stream", plan.kind);
        }
    }

    #[test]
    fn header_truncation_is_a_strict_prefix_then_error() {
        // Find a TruncateHeader plan firing on request 0.
        let mut plan = (0..256)
            .find_map(|i| {
                FaultPlan::derive(11, i)
                    .filter(|p| p.kind == FaultKind::TruncateHeader && p.fire_at == 0)
            })
            .expect("schedule contains a first-request header tear");
        let full = b"{\"ok\":true,\"op\":\"info\",\"release\":\"demo\",\"epsilon\":1.0}\n";
        let mut out = Vec::new();
        let mut w = FaultWriter::new(&mut out, Some(&mut plan));
        let err = w.write_all(full).expect_err("tear must surface as a write error");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(!out.is_empty() && out.len() < full.len(), "strict prefix, got {}", out.len());
        assert_eq!(&full[..out.len()], &out[..], "prefix of the real frame");
        assert!(!out.ends_with(b"\n"), "a torn header never carries the terminating newline");
    }

    #[test]
    fn payload_truncation_spares_the_header() {
        let mut plan = (0..256)
            .find_map(|i| {
                FaultPlan::derive(5, i)
                    .filter(|p| p.kind == FaultKind::TruncatePayload && p.fire_at == 0)
            })
            .expect("schedule contains a first-request payload tear");
        let header = b"{\"ok\":true,\"op\":\"sample\",\"encoding\":\"binary\"}\n";
        let payload = [0x11u8; 256];
        let mut out = Vec::new();
        let mut w = FaultWriter::new(&mut out, Some(&mut plan));
        w.write_all(header).expect("header passes untouched");
        w.begin_payload();
        let err = w.write_all(&payload).expect_err("payload tear");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(out.len() > header.len(), "some payload bytes shipped");
        assert!(out.len() < header.len() + payload.len(), "but not all");
        assert_eq!(&out[..header.len()], header);
    }

    #[test]
    fn read_actions_fire_only_at_the_planned_request() {
        for idx in 0..256 {
            let Some(plan) = FaultPlan::derive(9, idx) else { continue };
            for req in 0..4 {
                let action = plan.read_action(req);
                if req != plan.fire_at {
                    assert_eq!(action, ReadAction::Proceed);
                    continue;
                }
                match plan.kind {
                    FaultKind::Reset => assert_eq!(action, ReadAction::Reset),
                    FaultKind::DelayRead => assert!(matches!(action, ReadAction::Delay(_))),
                    _ => assert_eq!(action, ReadAction::Proceed),
                }
            }
        }
    }

    #[test]
    fn unarmed_writer_is_passthrough() {
        let mut out = Vec::new();
        let mut w: FaultWriter<'_, Vec<u8>> = FaultWriter::new(&mut out, None);
        w.write_all(b"hello\n").unwrap();
        w.begin_payload();
        w.write_all(&[1, 2, 3]).unwrap();
        w.finish();
        assert_eq!(out, b"hello\n\x01\x02\x03");
    }

    #[test]
    fn env_arming_parses_or_rejects() {
        // Hygiene: the env var is read through this helper; exercise the
        // parse paths directly (libtest runs tests concurrently, so the
        // test must not mutate the process environment).
        assert_eq!(
            seed_from_env().unwrap_or(None).is_some(),
            std::env::var(FAULT_SEED_ENV).is_ok()
        );
    }
}
