//! Client-side replicated shard routing: rendezvous hashing over N
//! endpoints with replication factor R, per-endpoint circuit breakers,
//! failover, and merged cluster-wide `stats`.
//!
//! There is no coordinator process. Every [`ClusterClient`] computes the
//! same owner set for a release name from nothing but the endpoint list
//! ([`owners`]), so any number of clients agree on placement without
//! talking to each other, and `privhp cluster` partitions its `--release`
//! flags across shards with the very same function — a shard holds
//! exactly the releases the routing says it owns.
//!
//! # Routing
//!
//! A release's owners are the `R` endpoints with the highest
//! [`rendezvous_score`] (highest-random-weight hashing): adding or
//! removing one endpoint only moves the releases that endpoint owned,
//! and the owner set is independent of the order the endpoint list was
//! written in. Release-bearing ops (`sample`, `query`, `cdf`, `info`,
//! `load`) route to the owner set; `list` fans out and merges; `stats`
//! merges per-endpoint documents ([`merge_stats`]); `shutdown` fans out
//! to every endpoint.
//!
//! # Health and failover
//!
//! Each endpoint carries a circuit breaker:
//!
//! * **closed** — traffic flows. [`BREAKER_THRESHOLD`] *consecutive*
//!   transport/timeout failures open it. (A structured server frame —
//!   even `busy` — proves the process is alive and resets the streak.)
//! * **open** — the endpoint is skipped outright for a cool-down derived
//!   from [`RetryPolicy::backoff`] at the re-open streak, so cool-downs
//!   grow exponentially with seeded jitter and are fully deterministic
//!   in tests.
//! * **half-open** — the cool-down elapsed; the next request first sends
//!   one cheap `list` probe. Success closes the breaker and the real
//!   request proceeds; failure re-opens it with a longer cool-down.
//!
//! A retryable failure (or an open breaker) moves the request to the
//! next replica in rendezvous order. Responses are bit-identical under
//! failover because seeded `sample`/`query` are pure functions of
//! `(release bytes, request)` — any owner serves the same bytes. When
//! every owner of a release is down, the router answers a structured
//! retryable [`ErrorReply::unavailable`] carrying the release name.

use std::time::Instant;

use privhp_dp::rng::mix64;
use serde::Value;

use crate::client::{Client, ClientError, RetryPolicy};
use crate::protocol::{ok_frame, parse_request, ErrorReply, Request};

/// Default replication factor: every release is served by two shards, so
/// any single shard can die without losing a slice of the registry.
pub const DEFAULT_REPLICATION: usize = 2;

/// Consecutive transport/timeout failures that open an endpoint's
/// circuit breaker.
pub const BREAKER_THRESHOLD: u32 = 3;

/// The cheap liveness probe a half-open breaker sends before admitting
/// real traffic.
const PROBE: &str = "{\"op\":\"list\"}";

/// FNV-1a over a string — stable across runs and platforms, mixed
/// through [`mix64`] before use so similar names don't score similarly.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The rendezvous (highest-random-weight) score of `(release, endpoint)`.
/// Every client computes the same score from the same strings, so owner
/// sets agree with no coordination.
pub fn rendezvous_score(release: &str, endpoint: &str) -> u64 {
    mix64(fnv1a(release) ^ mix64(fnv1a(endpoint)))
}

/// The indices (into `endpoints`) of the `replication` owners of
/// `release`, best score first. The selected *endpoints* and their order
/// depend only on the endpoint strings, never on how the list happens to
/// be ordered; ties (only possible between equal strings) break by the
/// endpoint string so the result is total. `replication` is clamped to
/// `[1, endpoints.len()]`.
pub fn owners<S: AsRef<str>>(release: &str, endpoints: &[S], replication: usize) -> Vec<usize> {
    let mut scored: Vec<(u64, &str, usize)> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| (rendezvous_score(release, e.as_ref()), e.as_ref(), i))
        .collect();
    scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    scored.truncate(replication.clamp(1, endpoints.len()));
    scored.into_iter().map(|(_, _, i)| i).collect()
}

/// A circuit breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows.
    Closed,
    /// Tripped: the endpoint is skipped until its cool-down elapses.
    Open,
    /// Cool-down elapsed: the next request probes before real traffic.
    HalfOpen,
}

impl BreakerState {
    /// The state's wire spelling in cluster `stats` documents.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Per-endpoint breaker bookkeeping. Open/half-open are one mechanism:
/// `open_until` holds the cool-down deadline, and a deadline in the past
/// *is* the half-open state (the probe either clears it or re-arms it).
#[derive(Debug, Default)]
struct Breaker {
    /// Consecutive transport/timeout failures since the last proof of
    /// life (any structured frame, or a closed probe).
    consecutive: u32,
    /// Re-open streak: drives the cool-down's exponential growth; reset
    /// when the breaker closes.
    reopen_streak: u32,
    /// Lifetime number of times this breaker opened (for `stats`).
    opened_total: u64,
    /// Cool-down deadline while open/half-open.
    open_until: Option<Instant>,
}

impl Breaker {
    fn state(&self, now: Instant) -> BreakerState {
        match self.open_until {
            Some(until) if now < until => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
            None => BreakerState::Closed,
        }
    }

    /// Records a transport/timeout failure; opens (or re-opens) the
    /// breaker when the streak crosses the threshold.
    fn record_failure(&mut self, policy: &RetryPolicy, now: Instant) {
        self.consecutive += 1;
        let reopen = self.state(now) == BreakerState::HalfOpen;
        if reopen || (self.consecutive >= BREAKER_THRESHOLD && self.open_until.is_none()) {
            self.open_until = Some(now + policy.backoff(self.reopen_streak));
            self.reopen_streak = self.reopen_streak.saturating_add(1);
            self.opened_total += 1;
        }
    }

    /// Records proof of life: any structured frame, or a probe success.
    fn record_success(&mut self) {
        self.consecutive = 0;
        self.reopen_streak = 0;
        self.open_until = None;
    }
}

/// One endpoint's routing state: its lazily-dialed connection, breaker,
/// and disposition counters.
#[derive(Debug)]
struct Shard {
    endpoint: String,
    client: Option<Client>,
    breaker: Breaker,
    /// Requests this endpoint answered with a frame (success or terminal).
    ok: u64,
    /// Attempts that failed without an authoritative answer.
    failed: u64,
    /// Attempts skipped outright because the breaker was open.
    skipped_open: u64,
    /// Half-open probes sent.
    probes: u64,
}

impl Shard {
    fn new(endpoint: String) -> Self {
        Self {
            endpoint,
            client: None,
            breaker: Breaker::default(),
            ok: 0,
            failed: 0,
            skipped_open: 0,
            probes: 0,
        }
    }
}

/// One endpoint's slice of a merged cluster `stats` document: routing
/// counters plus the shard's own `stats` payload (or why it couldn't be
/// fetched). Plain data so [`merge_stats`] is a pure, socket-free
/// function.
#[derive(Debug, Clone)]
pub struct EndpointReport {
    /// The endpoint address.
    pub endpoint: String,
    /// Breaker state at snapshot time (a [`BreakerState::as_str`] value).
    pub breaker: &'static str,
    /// Times this breaker has opened.
    pub opened: u64,
    /// Requests answered with a frame (success or terminal).
    pub ok: u64,
    /// Attempts that failed without an authoritative answer.
    pub failed: u64,
    /// Attempts skipped because the breaker was open.
    pub skipped_open: u64,
    /// Half-open probes sent.
    pub probes: u64,
    /// The shard's `stats` payload (minus `ok`/`op`), or the fetch error.
    pub stats: Result<Value, String>,
}

/// Shard stats fields summed into the merged document's `aggregate`
/// object, in the same pinned order [`crate::stats::ServerStats::fields`]
/// emits them — so the per-shard accounting identity `connections ==
/// served + shed + timed_out + idle_closed + io_error + open` holds for
/// the aggregate whenever it holds per shard (sums of identities).
pub const AGGREGATE_FIELDS: [&str; 10] = [
    "connections",
    "open",
    "served",
    "shed",
    "timed_out",
    "idle_closed",
    "io_error",
    "requests",
    "errors",
    "points_sampled",
];

/// Builds the merged cluster `stats` frame value from per-endpoint
/// reports: `{"ok":true,"op":"stats","cluster":true,"endpoints":[...],
/// "aggregate":{...}}`. Field order is stable and load-bearing like the
/// single-server `stats` frame (scripts grep it positionally); the
/// cluster-stats field-order test pins it.
pub fn merge_stats(reports: &[EndpointReport]) -> Value {
    let endpoints = reports
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("endpoint".to_string(), Value::String(r.endpoint.clone())),
                ("breaker".to_string(), Value::String(r.breaker.into())),
                ("opened".to_string(), Value::UInt(r.opened)),
                ("requests_ok".to_string(), Value::UInt(r.ok)),
                ("requests_failed".to_string(), Value::UInt(r.failed)),
                ("skipped_open".to_string(), Value::UInt(r.skipped_open)),
                ("probes".to_string(), Value::UInt(r.probes)),
            ];
            match &r.stats {
                Ok(stats) => fields.push(("stats".to_string(), stats.clone())),
                Err(e) => fields.push(("error".to_string(), Value::String(e.clone()))),
            }
            Value::Object(fields)
        })
        .collect();
    let reachable = reports.iter().filter(|r| r.stats.is_ok()).count() as u64;
    let mut aggregate = vec![("reachable".to_string(), Value::UInt(reachable))];
    for key in AGGREGATE_FIELDS {
        let sum = reports
            .iter()
            .filter_map(|r| r.stats.as_ref().ok())
            .filter_map(|s| s.get(key).and_then(Value::as_u64))
            .sum();
        aggregate.push((key.to_string(), Value::UInt(sum)));
    }
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("op".to_string(), Value::String("stats".into())),
        ("cluster".to_string(), Value::Bool(true)),
        ("endpoints".to_string(), Value::Array(endpoints)),
        ("aggregate".to_string(), Value::Object(aggregate)),
    ])
}

/// A routing client over a replicated shard cluster. Speaks the exact
/// same one-line-in, one-line-out surface as [`Client`], but fans each
/// request to the rendezvous owners of its release with health-checked
/// failover. Like [`Client`], a returned `Ok` line may be a *terminal*
/// error frame — that is some shard's authoritative answer; `Err` means
/// no shard answered within the budget (including the synthesized
/// `unavailable` frame when every owner is down).
#[derive(Debug)]
pub struct ClusterClient {
    shards: Vec<Shard>,
    replication: usize,
    policy: RetryPolicy,
    binary: bool,
}

impl ClusterClient {
    /// Builds a router over `endpoints` with the default replication
    /// factor and single-shot policy. Endpoints must be non-empty and
    /// distinct (a duplicate would silently halve the real replication).
    pub fn new<S: AsRef<str>>(endpoints: &[S]) -> Result<Self, String> {
        Self::with_policy(endpoints, DEFAULT_REPLICATION, RetryPolicy::default())
    }

    /// Builds a router with an explicit replication factor and retry
    /// policy. `policy.retries` counts *extra passes over the owner set*:
    /// one pass tries every reachable owner in rendezvous order, so even
    /// `retries: 0` already fails over.
    pub fn with_policy<S: AsRef<str>>(
        endpoints: &[S],
        replication: usize,
        policy: RetryPolicy,
    ) -> Result<Self, String> {
        if endpoints.is_empty() {
            return Err("cluster needs at least one endpoint".into());
        }
        if replication == 0 {
            return Err("replication factor must be at least 1".into());
        }
        let mut seen: Vec<&str> = Vec::new();
        for e in endpoints {
            let e = e.as_ref();
            if seen.contains(&e) {
                return Err(format!("endpoint '{e}' given twice"));
            }
            seen.push(e);
        }
        Ok(Self {
            shards: endpoints.iter().map(|e| Shard::new(e.as_ref().to_string())).collect(),
            replication: replication.min(endpoints.len()),
            policy,
            binary: false,
        })
    }

    /// The endpoint list, in construction order.
    pub fn endpoints(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.endpoint.as_str()).collect()
    }

    /// The effective replication factor (clamped to the endpoint count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Switches every shard connection to the binary bulk-sample
    /// encoding. Applied lazily: live connections are dropped and each
    /// endpoint re-negotiates on its next dial (and after every
    /// reconnect, exactly like [`Client::set_binary`]).
    pub fn set_binary(&mut self) {
        self.binary = true;
        self.disconnect();
    }

    /// Drops every pooled connection (breaker state and counters are
    /// kept). Endpoints re-dial lazily on the next request. Closing
    /// client-side first also means no shard is left holding the
    /// active-close side of a socket — which is what lets a test kill a
    /// shard process and immediately re-bind its port.
    pub fn disconnect(&mut self) {
        for shard in &mut self.shards {
            shard.client = None;
        }
    }

    /// The breaker state of each endpoint, in construction order.
    pub fn breaker_states(&self) -> Vec<(String, BreakerState)> {
        let now = Instant::now();
        self.shards.iter().map(|s| (s.endpoint.clone(), s.breaker.state(now))).collect()
    }

    /// Sends one request and returns the authoritative response line,
    /// routing by the release the frame names. See [`Client::request`]
    /// for the `Ok`-may-be-terminal contract.
    pub fn request(&mut self, request_line: &str) -> Result<String, ClientError> {
        self.run(request_line, false).map(|(header, _)| header)
    }

    /// [`ClusterClient::request`] for binary-negotiated clusters: also
    /// returns the decoded flat `f64` lane payload after a successful
    /// binary `sample` header.
    pub fn request_expect_payload(
        &mut self,
        request_line: &str,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        self.run(request_line, true)
    }

    /// Fans `stats` into every endpoint and merges the answers with the
    /// router's own breaker states and disposition counters — partial
    /// outage shows up as `"breaker":"open"` + an `error` entry instead
    /// of silently vanishing from an aggregate.
    pub fn stats(&mut self) -> Value {
        let now = Instant::now();
        let mut reports = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let stats = match self.shards[i].breaker.state(now) {
                BreakerState::Open => Err("breaker open; endpoint skipped".to_string()),
                // Stats is itself a cheap probe: let it through half-open.
                _ => self.fetch_stats(i),
            };
            let s = &self.shards[i];
            reports.push(EndpointReport {
                endpoint: s.endpoint.clone(),
                breaker: s.breaker.state(Instant::now()).as_str(),
                opened: s.breaker.opened_total,
                ok: s.ok,
                failed: s.failed,
                skipped_open: s.skipped_open,
                probes: s.probes,
                stats,
            });
        }
        merge_stats(&reports)
    }

    /// One endpoint's `stats` payload with `ok`/`op` stripped (they move
    /// to the merged document's top level). Bypasses the ok/failed
    /// counters — those describe routed traffic, not the snapshot itself
    /// — but still feeds the breaker, so a dead endpoint discovered via
    /// `stats` is skipped by subsequent routing too.
    fn fetch_stats(&mut self, i: usize) -> Result<Value, String> {
        let reply = self
            .exchange(i, "{\"op\":\"stats\"}", false)
            .map_err(|e| e.to_string())
            .map(|(header, _)| header)?;
        let v = serde_json::parse_value_str(&reply)
            .map_err(|e| format!("unparseable stats frame '{reply}': {e}"))?;
        match v {
            Value::Object(fields) => Ok(Value::Object(
                fields.into_iter().filter(|(k, _)| !matches!(k.as_str(), "ok" | "op")).collect(),
            )),
            _ => Err(format!("stats frame is not an object: {reply}")),
        }
    }

    /// Routes one parsed request line.
    fn run(
        &mut self,
        request_line: &str,
        want_payload: bool,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let line = request_line.trim();
        let request = match parse_request(line) {
            Ok(r) => r,
            // The router is the first server-shaped thing a frame meets;
            // a malformed frame gets the same structured terminal answer
            // a shard would have produced (no shard round-trip needed —
            // identical bytes can never succeed anywhere).
            Err(msg) => return Ok((ErrorReply::bad_request(msg).frame(), None)),
        };
        match &request {
            Request::Sample { release, .. }
            | Request::Query { release, .. }
            | Request::Cdf { release, .. }
            | Request::Info { release } => {
                let release = release.clone();
                self.route_release(&release, line, want_payload)
            }
            Request::Load { name, .. } => {
                let name = name.clone();
                self.load_owners(&name, line)
            }
            Request::List => self.merged_list(),
            Request::Stats => {
                let doc = self.stats();
                Ok((serde_json::value_to_string(&doc), None))
            }
            Request::Format { binary } => {
                if *binary {
                    self.set_binary();
                } else {
                    self.binary = false;
                    self.disconnect();
                }
                let encoding = if *binary { "binary" } else { "json" };
                Ok((ok_frame("format", vec![("encoding", Value::String(encoding.into()))]), None))
            }
            Request::Shutdown => self.shutdown_all(),
        }
    }

    /// Routes a release-bearing request to its owner set with failover:
    /// each pass walks the owners in rendezvous order, skipping open
    /// breakers; between passes the client sleeps the policy's seeded
    /// backoff. When every pass comes up empty the request settles as a
    /// structured retryable `unavailable` error naming the release.
    fn route_release(
        &mut self,
        release: &str,
        line: &str,
        want_payload: bool,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let owner_set = owners(release, &self.endpoints(), self.replication);
        for pass in 0..=self.policy.retries {
            if pass > 0 {
                std::thread::sleep(self.policy.backoff(pass - 1));
            }
            for &i in &owner_set {
                match self.try_shard(i, line, want_payload) {
                    Ok(resp) => return Ok(resp),
                    Err(_) => continue,
                }
            }
        }
        Err(ClientError::Server {
            code: Some("unavailable".into()),
            frame: ErrorReply::unavailable(release).frame(),
        })
    }

    /// One routed attempt against one endpoint: breaker gate, half-open
    /// probe, then the real exchange. `Err(None)` means the breaker
    /// skipped the endpoint without touching the network.
    fn try_shard(
        &mut self,
        i: usize,
        line: &str,
        want_payload: bool,
    ) -> Result<(String, Option<Vec<f64>>), Option<ClientError>> {
        let now = Instant::now();
        match self.shards[i].breaker.state(now) {
            BreakerState::Open => {
                self.shards[i].skipped_open += 1;
                return Err(None);
            }
            BreakerState::HalfOpen => {
                self.shards[i].probes += 1;
                if let Err(e) = self.exchange(i, PROBE, false) {
                    self.shards[i].failed += 1;
                    return Err(Some(e));
                }
                // Probe answered: the breaker closed in `exchange`; fall
                // through to the real request on the proven connection.
            }
            BreakerState::Closed => {}
        }
        match self.exchange(i, line, want_payload) {
            Ok(resp) => {
                self.shards[i].ok += 1;
                Ok(resp)
            }
            Err(e) => {
                self.shards[i].failed += 1;
                Err(Some(e))
            }
        }
    }

    /// One single-shot request/response exchange with endpoint `i`,
    /// dialing (and re-negotiating binary mode) if needed, feeding the
    /// breaker: transport/timeout failures count toward opening it; any
    /// structured frame — retryable or terminal — is proof of life and
    /// resets it. Retryable server frames (`busy`, ...) still return
    /// `Err` so the caller fails over to the next replica.
    fn exchange(
        &mut self,
        i: usize,
        line: &str,
        want_payload: bool,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let result = (|| {
            if self.shards[i].client.is_none() {
                let single = RetryPolicy { retries: 0, ..self.policy.clone() };
                let mut client = Client::connect_with(&self.shards[i].endpoint, single)?;
                if self.binary {
                    client.set_binary().map_err(ClientError::Transport)?;
                }
                self.shards[i].client = Some(client);
            }
            let client = self.shards[i].client.as_mut().expect("connected above");
            if want_payload {
                client.request_expect_payload(line)
            } else {
                client.request(line).map(|header| (header, None))
            }
        })();
        match &result {
            Ok(_) => self.shards[i].breaker.record_success(),
            Err(e) => {
                self.shards[i].client = None;
                match e {
                    ClientError::Transport(_) | ClientError::Timeout(_) => {
                        self.shards[i].breaker.record_failure(&self.policy, Instant::now());
                    }
                    // A frame, even an error frame, proves the process
                    // is up and answering.
                    ClientError::Server { .. } => self.shards[i].breaker.record_success(),
                }
            }
        }
        result
    }

    /// Forwards a `load` to every owner of the name (each owner shard
    /// must hold its replica). Returns the last owner's ack, or the
    /// first failure.
    fn load_owners(
        &mut self,
        name: &str,
        line: &str,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let owner_set = owners(name, &self.endpoints(), self.replication);
        let mut last = None;
        for &i in &owner_set {
            match self.try_shard(i, line, false) {
                Ok(resp) => last = Some(resp),
                Err(Some(e)) => return Err(e),
                Err(None) => {
                    return Err(ClientError::Server {
                        code: Some("unavailable".into()),
                        frame: ErrorReply::unavailable(name).frame(),
                    });
                }
            }
        }
        last.ok_or_else(|| ClientError::Server {
            code: Some("unavailable".into()),
            frame: ErrorReply::unavailable(name).frame(),
        })
    }

    /// Fans `list` to every reachable endpoint and merges the unique
    /// release summaries (by name, sorted — each release appears once no
    /// matter how many replicas hold it). Fails only when no endpoint
    /// answered at all.
    fn merged_list(&mut self) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let mut releases: Vec<(String, Value)> = Vec::new();
        let mut last_err = None;
        let mut answered = false;
        for i in 0..self.shards.len() {
            match self.try_shard(i, PROBE, false) {
                Ok((header, _)) => {
                    answered = true;
                    if let Ok(v) = serde_json::parse_value_str(&header) {
                        for summary in
                            v.get("releases").and_then(Value::as_array).into_iter().flatten()
                        {
                            let Some(name) = summary.get("name").and_then(Value::as_str) else {
                                continue;
                            };
                            if !releases.iter().any(|(n, _)| n == name) {
                                releases.push((name.to_string(), summary.clone()));
                            }
                        }
                    }
                }
                Err(e) => last_err = e.or(last_err),
            }
        }
        if !answered {
            return Err(last_err.unwrap_or_else(|| {
                ClientError::Transport("no cluster endpoint answered list".into())
            }));
        }
        releases.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let summaries = releases.into_iter().map(|(_, v)| v).collect();
        Ok((ok_frame("list", vec![("releases", Value::Array(summaries))]), None))
    }

    /// Fans `shutdown` to every endpoint, best-effort. Succeeds if any
    /// endpoint acknowledged.
    fn shutdown_all(&mut self) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let mut acked = false;
        let mut last_err = None;
        for i in 0..self.shards.len() {
            match self.try_shard(i, "{\"op\":\"shutdown\"}", false) {
                Ok(_) => acked = true,
                Err(e) => last_err = e.or(last_err),
            }
        }
        if acked {
            Ok((ok_frame("shutdown", vec![("stopping", Value::Bool(true))]), None))
        } else {
            Err(last_err.unwrap_or_else(|| {
                ClientError::Transport("no cluster endpoint acknowledged shutdown".into())
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_sets_are_permutation_invariant_and_distinct() {
        let forward = ["127.0.0.1:4800", "127.0.0.1:4801", "127.0.0.1:4802"];
        let backward = ["127.0.0.1:4802", "127.0.0.1:4801", "127.0.0.1:4800"];
        for i in 0..64 {
            let name = format!("release-{i}");
            let a: Vec<&str> = owners(&name, &forward, 2).into_iter().map(|j| forward[j]).collect();
            let b: Vec<&str> =
                owners(&name, &backward, 2).into_iter().map(|j| backward[j]).collect();
            assert_eq!(a, b, "owner endpoints (and their order) must not depend on list order");
            assert_eq!(a.len(), 2);
            assert_ne!(a[0], a[1], "owners must be distinct endpoints");
        }
    }

    #[test]
    fn ownership_spreads_and_replication_clamps() {
        let endpoints = ["a:1", "b:2", "c:3"];
        let mut primary_counts = [0usize; 3];
        for i in 0..96 {
            let name = format!("r{i}");
            primary_counts[owners(&name, &endpoints, 1)[0]] += 1;
        }
        for (i, c) in primary_counts.iter().enumerate() {
            assert!(*c > 0, "endpoint {i} owns nothing across 96 names: {primary_counts:?}");
        }
        // R larger than the fleet clamps; R=0 is clamped up to 1.
        assert_eq!(owners("x", &endpoints, 9).len(), 3);
        assert_eq!(owners("x", &endpoints, 0).len(), 1);
    }

    #[test]
    fn removing_an_endpoint_only_moves_its_own_releases() {
        let full = ["a:1", "b:2", "c:3", "d:4"];
        let reduced = ["a:1", "b:2", "d:4"]; // c removed
        for i in 0..64 {
            let name = format!("r{i}");
            let before: Vec<&str> = owners(&name, &full, 1).into_iter().map(|j| full[j]).collect();
            let after: Vec<&str> =
                owners(&name, &reduced, 1).into_iter().map(|j| reduced[j]).collect();
            if before[0] != "c:3" {
                assert_eq!(before, after, "'{name}' moved although its owner survived");
            }
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let policy = RetryPolicy {
            backoff_base: std::time::Duration::from_millis(5),
            backoff_max: std::time::Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        let mut b = Breaker::default();
        let t0 = Instant::now();
        for _ in 0..BREAKER_THRESHOLD - 1 {
            b.record_failure(&policy, t0);
            assert_eq!(b.state(t0), BreakerState::Closed);
        }
        b.record_failure(&policy, t0);
        assert_eq!(b.state(t0), BreakerState::Open);
        assert_eq!(b.opened_total, 1);
        // Past the cool-down it half-opens rather than closing outright.
        let later = t0 + std::time::Duration::from_secs(1);
        assert_eq!(b.state(later), BreakerState::HalfOpen);
        // A failure in half-open re-opens immediately with a longer streak.
        b.record_failure(&policy, later);
        assert_eq!(b.state(later), BreakerState::Open);
        assert_eq!(b.opened_total, 2);
        // Success closes fully.
        b.record_success();
        assert_eq!(b.state(later), BreakerState::Closed);
        assert_eq!(b.consecutive, 0);
    }

    #[test]
    fn a_frame_resets_the_failure_streak() {
        let policy = RetryPolicy::default();
        let mut b = Breaker::default();
        let t0 = Instant::now();
        b.record_failure(&policy, t0);
        b.record_failure(&policy, t0);
        b.record_success(); // e.g. a `busy` frame: the process is alive
        b.record_failure(&policy, t0);
        b.record_failure(&policy, t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "streak must reset on proof of life");
    }

    fn synthetic_shard_stats(connections: u64, served: u64, open: u64) -> Value {
        Value::Object(vec![
            ("connections".to_string(), Value::UInt(connections)),
            ("open".to_string(), Value::UInt(open)),
            ("served".to_string(), Value::UInt(served)),
            ("shed".to_string(), Value::UInt(0)),
            ("timed_out".to_string(), Value::UInt(0)),
            ("idle_closed".to_string(), Value::UInt(0)),
            ("io_error".to_string(), Value::UInt(connections - served - open)),
            ("requests".to_string(), Value::UInt(served * 2)),
            ("errors".to_string(), Value::UInt(1)),
            ("points_sampled".to_string(), Value::UInt(64)),
        ])
    }

    fn report(endpoint: &str, stats: Result<Value, String>) -> EndpointReport {
        EndpointReport {
            endpoint: endpoint.to_string(),
            breaker: "closed",
            opened: 0,
            ok: 3,
            failed: 1,
            skipped_open: 0,
            probes: 0,
            stats,
        }
    }

    #[test]
    fn cluster_stats_field_order_is_stable() {
        // Scripts grep the merged frame positionally, exactly like the
        // single-server stats frame — this pins the order they rely on.
        let doc = merge_stats(&[
            report("a:1", Ok(synthetic_shard_stats(10, 9, 1))),
            report("b:2", Err("breaker open; endpoint skipped".into())),
        ]);
        let Value::Object(top) = &doc else { panic!("merged stats is not an object") };
        let top_names: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(top_names, ["ok", "op", "cluster", "endpoints", "aggregate"]);

        let endpoints = doc.get("endpoints").and_then(Value::as_array).unwrap();
        let Value::Object(ok_entry) = &endpoints[0] else { panic!() };
        let entry_names: Vec<&str> = ok_entry.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            entry_names,
            [
                "endpoint",
                "breaker",
                "opened",
                "requests_ok",
                "requests_failed",
                "skipped_open",
                "probes",
                "stats",
            ]
        );
        let Value::Object(err_entry) = &endpoints[1] else { panic!() };
        assert_eq!(err_entry.last().map(|(k, _)| k.as_str()), Some("error"));

        let Value::Object(agg) = doc.get("aggregate").unwrap() else { panic!() };
        let agg_names: Vec<&str> = agg.iter().map(|(k, _)| k.as_str()).collect();
        let mut expected = vec!["reachable"];
        expected.extend(AGGREGATE_FIELDS);
        assert_eq!(agg_names, expected);
    }

    #[test]
    fn aggregate_sums_reachable_shards_and_satisfies_the_identity() {
        let doc = merge_stats(&[
            report("a:1", Ok(synthetic_shard_stats(10, 8, 1))),
            report("b:2", Ok(synthetic_shard_stats(6, 6, 0))),
            report("c:3", Err("dial failed".into())),
        ]);
        let agg = doc.get("aggregate").unwrap();
        let get = |k: &str| agg.get(k).and_then(Value::as_u64).unwrap();
        assert_eq!(get("reachable"), 2);
        assert_eq!(get("connections"), 16);
        assert_eq!(get("served"), 14);
        // The accounting identity is preserved by summation.
        assert_eq!(
            get("connections"),
            get("served")
                + get("shed")
                + get("timed_out")
                + get("idle_closed")
                + get("io_error")
                + get("open"),
        );
    }

    #[test]
    fn cluster_client_validates_its_endpoint_list() {
        assert!(ClusterClient::new::<&str>(&[]).unwrap_err().contains("at least one"));
        assert!(ClusterClient::new(&["a:1", "a:1"]).unwrap_err().contains("twice"));
        let cc = ClusterClient::new(&["a:1"]).unwrap();
        assert_eq!(cc.replication(), 1, "replication clamps to the fleet size");
        let cc = ClusterClient::new(&["a:1", "b:2", "c:3"]).unwrap();
        assert_eq!(cc.replication(), DEFAULT_REPLICATION);
        assert!(ClusterClient::with_policy(&["a:1"], 0, RetryPolicy::default())
            .unwrap_err()
            .contains("at least 1"));
    }
}
