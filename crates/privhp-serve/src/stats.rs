//! Lock-free serving counters, exposed through the `stats` op.
//!
//! Counters are relaxed atomics bumped once per connection/request on the
//! handler threads; the `stats` op snapshots them without stopping the
//! world, so numbers read under load are each individually exact but only
//! approximately mutually consistent — the right trade for an operational
//! endpoint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::Value;

use crate::protocol::{op_index, OPS};

/// Upper bucket edges of the request-latency histogram, in microseconds;
/// a final unbounded bucket catches everything slower.
pub const LATENCY_EDGES_MICROS: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Aggregate serving counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    points_sampled: AtomicU64,
    per_op: [AtomicU64; OPS.len()],
    latency: [AtomicU64; LATENCY_EDGES_MICROS.len() + 1],
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts an accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one answered request. `op` is `None` when the frame never
    /// parsed far enough to name one; `points` is the number of synthetic
    /// points the response carried.
    pub fn record(&self, op: Option<&str>, elapsed: Duration, points: u64, error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if points > 0 {
            self.points_sampled.fetch_add(points, Ordering::Relaxed);
        }
        if let Some(i) = op.and_then(op_index) {
            self.per_op[i].fetch_add(1, Ordering::Relaxed);
        }
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_EDGES_MICROS
            .iter()
            .position(|&edge| micros < edge)
            .unwrap_or(LATENCY_EDGES_MICROS.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests answered so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Snapshot as the `stats` response payload.
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        let by_op = Value::Object(
            OPS.iter()
                .zip(&self.per_op)
                .map(|(op, c)| (op.to_string(), Value::UInt(c.load(Ordering::Relaxed))))
                .collect(),
        );
        let mut latency = Vec::with_capacity(self.latency.len());
        for (i, c) in self.latency.iter().enumerate() {
            let label = match LATENCY_EDGES_MICROS.get(i) {
                Some(edge) => format!("le_{edge}us"),
                None => format!("gt_{}us", LATENCY_EDGES_MICROS[LATENCY_EDGES_MICROS.len() - 1]),
            };
            latency.push((label, Value::UInt(c.load(Ordering::Relaxed))));
        }
        vec![
            ("connections", Value::UInt(self.connections.load(Ordering::Relaxed))),
            ("requests", Value::UInt(self.requests.load(Ordering::Relaxed))),
            ("errors", Value::UInt(self.errors.load(Ordering::Relaxed))),
            ("points_sampled", Value::UInt(self.points_sampled.load(Ordering::Relaxed))),
            ("by_op", by_op),
            ("latency_micros", Value::Object(latency)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field<'a>(fields: &'a [(&'static str, Value)], name: &str) -> &'a Value {
        &fields.iter().find(|(k, _)| *k == name).unwrap().1
    }

    #[test]
    fn counters_accumulate() {
        let s = ServerStats::new();
        s.connection_opened();
        s.record(Some("sample"), Duration::from_micros(50), 128, false);
        s.record(Some("sample"), Duration::from_micros(5_000), 64, false);
        s.record(Some("list"), Duration::from_millis(2), 0, false);
        s.record(None, Duration::from_secs(2), 0, true);
        let f = s.fields();
        assert_eq!(field(&f, "connections").as_u64(), Some(1));
        assert_eq!(field(&f, "requests").as_u64(), Some(4));
        assert_eq!(field(&f, "errors").as_u64(), Some(1));
        assert_eq!(field(&f, "points_sampled").as_u64(), Some(192));
        assert_eq!(field(&f, "by_op").get("sample").unwrap().as_u64(), Some(2));
        assert_eq!(field(&f, "by_op").get("list").unwrap().as_u64(), Some(1));
        let lat = field(&f, "latency_micros");
        assert_eq!(lat.get("le_100us").unwrap().as_u64(), Some(1));
        assert_eq!(lat.get("le_10000us").unwrap().as_u64(), Some(2));
        assert_eq!(lat.get("gt_1000000us").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn bucket_edges_are_half_open() {
        let s = ServerStats::new();
        // Exactly 100us is NOT < 100, so it lands in the next bucket.
        s.record(Some("cdf"), Duration::from_micros(100), 0, false);
        let f = s.fields();
        assert_eq!(field(&f, "latency_micros").get("le_1000us").unwrap().as_u64(), Some(1));
    }
}
