//! Lock-free serving counters, exposed through the `stats` op.
//!
//! Counters are relaxed atomics bumped once per connection/request on the
//! handler threads; the `stats` op snapshots them without stopping the
//! world, so numbers read under load are each individually exact but only
//! approximately mutually consistent — the right trade for an operational
//! endpoint.
//!
//! Latency is tracked by [`LatencyHistogram`], a log-spaced fixed-bucket
//! histogram (~4 buckets per decade from 10µs to 10s) with a
//! [`LatencyHistogram::quantile`] estimator, so p50/p99/p999 are derivable
//! from the same counters the `stats` op serves. The histogram is also the
//! measurement sink of the `exp_serve` load generator, which records
//! client-observed latencies into its own instance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::Value;

use crate::protocol::{op_index, OPS};

/// Upper bucket edges of the request-latency histogram, in microseconds:
/// `{10, 18, 32, 56} × 10^k` for six decades (10µs up to 5.6s) plus a 10s
/// edge; a final unbounded bucket catches everything slower.
pub const LATENCY_EDGES_MICROS: [u64; 25] = [
    10, 18, 32, 56, 100, 180, 320, 560, 1_000, 1_800, 3_200, 5_600, 10_000, 18_000, 32_000, 56_000,
    100_000, 180_000, 320_000, 560_000, 1_000_000, 1_800_000, 3_200_000, 5_600_000, 10_000_000,
];

/// A fixed-bucket latency histogram over [`LATENCY_EDGES_MICROS`].
///
/// Buckets are half-open `[prev_edge, edge)` intervals (the first starts at
/// 0, the last is unbounded above the final edge). Recording is one relaxed
/// atomic increment, so handler threads never contend; quantiles are
/// estimated by linear interpolation inside the selected bucket.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_EDGES_MICROS.len() + 1],
}

impl LatencyHistogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let bucket = LATENCY_EDGES_MICROS
            .iter()
            .position(|&edge| micros < edge)
            .unwrap_or(LATENCY_EDGES_MICROS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation as a [`Duration`].
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Estimates the `q`-quantile (e.g. `0.5`, `0.99`, `0.999`) in
    /// microseconds by linear interpolation within the bucket containing
    /// the target rank. The first bucket interpolates down to 0; the
    /// unbounded overflow bucket reports its lower edge (the histogram
    /// cannot see past its last edge). Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let lo = if i == 0 { 0.0 } else { LATENCY_EDGES_MICROS[i - 1] as f64 };
                let hi = LATENCY_EDGES_MICROS.get(i).map(|&e| e as f64).unwrap_or(lo);
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            cum += c;
        }
        LATENCY_EDGES_MICROS[LATENCY_EDGES_MICROS.len() - 1] as f64
    }

    /// Snapshot as a JSON object of `le_<edge>us` / `gt_<edge>us` bucket
    /// counts. Empty buckets are omitted to keep `stats` frames compact
    /// (26 buckets, most of them zero on any real workload).
    pub fn to_value(&self) -> Value {
        let mut buckets = Vec::new();
        for (i, c) in self.buckets.iter().enumerate() {
            let count = c.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let label = match LATENCY_EDGES_MICROS.get(i) {
                Some(edge) => format!("le_{edge}us"),
                None => format!("gt_{}us", LATENCY_EDGES_MICROS[LATENCY_EDGES_MICROS.len() - 1]),
            };
            buckets.push((label, Value::UInt(count)));
        }
        Value::Object(buckets)
    }
}

/// How an accepted connection ended. Every connection the listener
/// accepts is counted once by [`ServerStats::connection_opened`] and then
/// exactly once more by [`ServerStats::connection_closed`] with its
/// disposition, giving the accounting identity
///
/// ```text
/// connections == served + shed + timed_out + idle_closed + io_error + open
/// ```
///
/// at any quiet instant (`open` is a real gauge, not a derived residual,
/// so a code path that forgets to record a disposition shows up as a
/// permanently non-zero `open` instead of silently balancing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Ran to a clean end: the peer closed, or the server shut down.
    Served,
    /// Shed by backpressure (answered with a `busy` frame and closed
    /// because the worker queue was full).
    Shed,
    /// Dropped because a request blew the `--request-timeout-ms` budget.
    TimedOut,
    /// Dropped idle past `--idle-timeout-ms` (after a parting
    /// `idle_timeout` frame), freeing its worker.
    IdleClosed,
    /// Dropped because writing a response failed (peer reset, torn pipe —
    /// including injected faults).
    IoError,
}

/// Aggregate serving counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    open: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    idle_closed: AtomicU64,
    io_error: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    points_sampled: AtomicU64,
    per_op: [AtomicU64; OPS.len()],
    latency: LatencyHistogram,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts an accepted connection (bumps both the lifetime total and
    /// the `open` gauge; [`Self::connection_closed`] settles the gauge).
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// Settles one opened connection with its final [`Disposition`].
    pub fn connection_closed(&self, disposition: Disposition) {
        let counter = match disposition {
            Disposition::Served => &self.served,
            Disposition::Shed => &self.shed,
            Disposition::TimedOut => &self.timed_out,
            Disposition::IdleClosed => &self.idle_closed,
            Disposition::IoError => &self.io_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts one answered request. `op` is `None` when the frame never
    /// parsed far enough to name one; `points` is the number of synthetic
    /// points the response carried.
    pub fn record(&self, op: Option<&str>, elapsed: Duration, points: u64, error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if points > 0 {
            self.points_sampled.fetch_add(points, Ordering::Relaxed);
        }
        if let Some(i) = op.and_then(op_index) {
            self.per_op[i].fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(elapsed);
    }

    /// Total requests answered so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total accepted connections so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Accepted connections not yet settled with a disposition.
    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Connections that ran to a clean end so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections shed by backpressure so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Connections dropped over the per-request budget so far.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Connections dropped idle so far.
    pub fn idle_closed(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }

    /// Connections dropped on a response write failure so far.
    pub fn io_error(&self) -> u64 {
        self.io_error.load(Ordering::Relaxed)
    }

    /// The request-latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Snapshot as the `stats` response payload.
    ///
    /// Field order is stable and load-bearing: connection accounting
    /// first (`connections`, `open`, then the five dispositions in
    /// identity order), then request counters, then latency — CI smoke
    /// scripts grep these fields positionally instead of JSON-parsing.
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        let by_op = Value::Object(
            OPS.iter()
                .zip(&self.per_op)
                .map(|(op, c)| (op.to_string(), Value::UInt(c.load(Ordering::Relaxed))))
                .collect(),
        );
        vec![
            ("connections", Value::UInt(self.connections.load(Ordering::Relaxed))),
            ("open", Value::UInt(self.open.load(Ordering::Relaxed))),
            ("served", Value::UInt(self.served.load(Ordering::Relaxed))),
            ("shed", Value::UInt(self.shed.load(Ordering::Relaxed))),
            ("timed_out", Value::UInt(self.timed_out.load(Ordering::Relaxed))),
            ("idle_closed", Value::UInt(self.idle_closed.load(Ordering::Relaxed))),
            ("io_error", Value::UInt(self.io_error.load(Ordering::Relaxed))),
            ("requests", Value::UInt(self.requests.load(Ordering::Relaxed))),
            ("errors", Value::UInt(self.errors.load(Ordering::Relaxed))),
            ("points_sampled", Value::UInt(self.points_sampled.load(Ordering::Relaxed))),
            ("by_op", by_op),
            ("p50_us", Value::Float(self.latency.quantile(0.5))),
            ("p99_us", Value::Float(self.latency.quantile(0.99))),
            ("p999_us", Value::Float(self.latency.quantile(0.999))),
            ("latency_micros", self.latency.to_value()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field<'a>(fields: &'a [(&'static str, Value)], name: &str) -> &'a Value {
        &fields.iter().find(|(k, _)| *k == name).unwrap().1
    }

    #[test]
    fn counters_accumulate() {
        let s = ServerStats::new();
        s.connection_opened();
        s.connection_closed(Disposition::Shed);
        s.record(Some("sample"), Duration::from_micros(50), 128, false);
        s.record(Some("sample"), Duration::from_micros(5_000), 64, false);
        s.record(Some("list"), Duration::from_millis(2), 0, false);
        s.record(None, Duration::from_secs(20), 0, true);
        let f = s.fields();
        assert_eq!(field(&f, "connections").as_u64(), Some(1));
        assert_eq!(field(&f, "shed").as_u64(), Some(1));
        assert_eq!(field(&f, "open").as_u64(), Some(0));
        assert_eq!(field(&f, "requests").as_u64(), Some(4));
        assert_eq!(field(&f, "errors").as_u64(), Some(1));
        assert_eq!(field(&f, "points_sampled").as_u64(), Some(192));
        assert_eq!(field(&f, "by_op").get("sample").unwrap().as_u64(), Some(2));
        assert_eq!(field(&f, "by_op").get("list").unwrap().as_u64(), Some(1));
        let lat = field(&f, "latency_micros");
        assert_eq!(lat.get("le_56us").unwrap().as_u64(), Some(1));
        assert_eq!(lat.get("le_5600us").unwrap().as_u64(), Some(1));
        assert_eq!(lat.get("le_3200us").unwrap().as_u64(), Some(1));
        assert_eq!(lat.get("gt_10000000us").unwrap().as_u64(), Some(1));
        assert!(lat.get("le_10us").is_none(), "empty buckets are omitted");
    }

    #[test]
    fn disposition_accounting_identity_holds() {
        let s = ServerStats::new();
        let dispositions = [
            Disposition::Served,
            Disposition::Served,
            Disposition::Shed,
            Disposition::TimedOut,
            Disposition::IdleClosed,
            Disposition::IoError,
            Disposition::IoError,
        ];
        for d in dispositions {
            s.connection_opened();
            s.connection_closed(d);
        }
        // Two connections opened but not yet settled.
        s.connection_opened();
        s.connection_opened();
        assert_eq!(s.connections(), 9);
        assert_eq!(s.open(), 2);
        assert_eq!(
            s.connections(),
            s.served() + s.shed() + s.timed_out() + s.idle_closed() + s.io_error() + s.open(),
            "accepted == served + shed + timed_out + idle_closed + io_error + open"
        );
        assert_eq!(s.served(), 2);
        assert_eq!(s.timed_out(), 1);
        assert_eq!(s.idle_closed(), 1);
        assert_eq!(s.io_error(), 2);
    }

    #[test]
    fn stats_field_order_is_stable() {
        // CI smoke scripts grep the stats frame without a JSON parser;
        // this pins the field order they rely on.
        let names: Vec<&str> = ServerStats::new().fields().iter().map(|(k, _)| *k).collect();
        assert_eq!(
            names,
            [
                "connections",
                "open",
                "served",
                "shed",
                "timed_out",
                "idle_closed",
                "io_error",
                "requests",
                "errors",
                "points_sampled",
                "by_op",
                "p50_us",
                "p99_us",
                "p999_us",
                "latency_micros",
            ]
        );
    }

    #[test]
    fn bucket_edges_are_half_open() {
        let h = LatencyHistogram::new();
        // Exactly 100us is NOT < 100, so it lands in the next bucket.
        h.record_micros(100);
        let v = h.to_value();
        assert_eq!(v.get("le_180us").unwrap().as_u64(), Some(1));
        assert!(v.get("le_100us").is_none());
        // One tick under the edge stays below it.
        h.record_micros(99);
        assert_eq!(h.to_value().get("le_100us").unwrap().as_u64(), Some(1));
        // Zero lands in the first bucket; a huge value in the overflow one.
        h.record_micros(0);
        h.record_micros(u64::MAX);
        let v = h.to_value();
        assert_eq!(v.get("le_10us").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("gt_10000000us").unwrap().as_u64(), Some(1));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn edges_are_log_spaced_and_sorted() {
        assert!(LATENCY_EDGES_MICROS.windows(2).all(|w| w[0] < w[1]));
        // ~4 buckets per decade: each decade from 10µs on contains the
        // {10,18,32,56} pattern scaled by a power of ten.
        for k in 0..6u32 {
            let scale = 10u64.pow(k);
            for base in [10, 18, 32, 56] {
                assert!(
                    LATENCY_EDGES_MICROS.contains(&(base * scale)),
                    "missing edge {}",
                    base * scale
                );
            }
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reports 0");
        // 100 observations uniformly inside [100, 180): the median estimate
        // sits mid-bucket, p0..p100 sweep the bucket span.
        for _ in 0..100 {
            h.record_micros(150);
        }
        let p50 = h.quantile(0.5);
        assert!((100.0..180.0).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.999) <= 180.0);
        assert!(h.quantile(0.01) >= 100.0);

        // Add a slow tail: 9 requests in [1s, 1.8s). p50 stays in the fast
        // bucket; p99 moves to the tail bucket.
        for _ in 0..9 {
            h.record_micros(1_200_000);
        }
        assert!((100.0..180.0).contains(&h.quantile(0.5)));
        let p99 = h.quantile(0.99);
        assert!((1_000_000.0..1_800_000.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn overflow_bucket_reports_its_lower_edge() {
        let h = LatencyHistogram::new();
        h.record_micros(30_000_000);
        assert_eq!(h.quantile(0.5), 10_000_000.0);
    }
}
