//! A minimal blocking client: send one request line, read one response
//! line. Used by `privhp client`, the CI smoke pipeline, the `exp_serve`
//! load generator, and the protocol tests; any language that can speak
//! line-delimited JSON over TCP works just as well. For bulk draws the
//! client can negotiate the binary sample frame ([`Client::set_binary`])
//! and decode its length-prefixed `f64` payload
//! ([`Client::send_expect_payload`]).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;

use crate::protocol::read_binary_payload;

/// Default time to wait for a response line before giving up.
pub const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// One connection to a `privhp serve` instance. Requests are answered in
/// order, so one connection can carry any number of them.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4750`).
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(RESPONSE_TIMEOUT))
            .map_err(|e| format!("cannot set timeout: {e}"))?;
        // Request frames are one small line each; Nagle + delayed ACK
        // would serialise request/response pairs at ~40ms apiece.
        let _ = stream.set_nodelay(true);
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?);
        Ok(Self { reader, writer: stream })
    }

    /// Sends one request frame and returns the (trimmed) response line.
    /// The request must be a single line; embedded newlines are rejected
    /// rather than silently split into several frames.
    pub fn send(&mut self, request_line: &str) -> Result<String, String> {
        let line = request_line.trim();
        if line.contains('\n') {
            return Err("request must be a single line".into());
        }
        writeln!(self.writer, "{line}")
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Ok(response.trim_end().to_string()),
            Err(e) => Err(format!("cannot read response: {e}")),
        }
    }

    /// Negotiates the binary `sample` encoding on this connection; after
    /// it succeeds, send `sample` requests through
    /// [`Client::send_expect_payload`].
    pub fn set_binary(&mut self) -> Result<(), String> {
        let line = self.send("{\"op\":\"format\",\"encoding\":\"binary\"}")?;
        let v = serde_json::parse_value_str(&line)
            .map_err(|e| format!("unparseable format response '{line}': {e}"))?;
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(format!("format negotiation refused: {line}"))
        }
    }

    /// Sends one request on a (possibly) binary-negotiated connection.
    /// Returns the one-line response header verbatim plus, when the header
    /// announces `"encoding":"binary"`, the decoded flat `f64` lane
    /// payload that followed it (`None` for ordinary JSON responses,
    /// errors included).
    pub fn send_expect_payload(
        &mut self,
        request_line: &str,
    ) -> Result<(String, Option<Vec<f64>>), String> {
        let header = self.send(request_line)?;
        let v = serde_json::parse_value_str(&header)
            .map_err(|e| format!("unparseable response header '{header}': {e}"))?;
        // Only a successful `sample` header is followed by a payload (the
        // `format` ack also carries an `encoding` field, but no payload).
        let binary_sample = v.get("ok").and_then(Value::as_bool) == Some(true)
            && v.get("op").and_then(Value::as_str) == Some("sample")
            && v.get("encoding").and_then(Value::as_str) == Some("binary");
        if !binary_sample {
            return Ok((header, None));
        }
        let lanes = read_binary_payload(&mut self.reader)?;
        Ok((header, Some(lanes)))
    }
}

/// Connects, sends one request, returns the response line.
pub fn oneshot(addr: &str, request_line: &str) -> Result<String, String> {
    Client::connect(addr)?.send(request_line)
}
