//! A minimal blocking client: send one request line, read one response
//! line. Used by `privhp client`, the CI smoke pipeline, and the protocol
//! tests; any language that can speak line-delimited JSON over TCP works
//! just as well.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default time to wait for a response line before giving up.
pub const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// One connection to a `privhp serve` instance. Requests are answered in
/// order, so one connection can carry any number of them.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4750`).
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(RESPONSE_TIMEOUT))
            .map_err(|e| format!("cannot set timeout: {e}"))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?);
        Ok(Self { reader, writer: stream })
    }

    /// Sends one request frame and returns the (trimmed) response line.
    /// The request must be a single line; embedded newlines are rejected
    /// rather than silently split into several frames.
    pub fn send(&mut self, request_line: &str) -> Result<String, String> {
        let line = request_line.trim();
        if line.contains('\n') {
            return Err("request must be a single line".into());
        }
        writeln!(self.writer, "{line}")
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Ok(response.trim_end().to_string()),
            Err(e) => Err(format!("cannot read response: {e}")),
        }
    }
}

/// Connects, sends one request, returns the response line.
pub fn oneshot(addr: &str, request_line: &str) -> Result<String, String> {
    Client::connect(addr)?.send(request_line)
}
