//! A blocking client with deadlines, reconnection and seeded-jitter
//! retry/backoff: send one request line, read one response line. Used by
//! `privhp client`, the CI smoke pipelines (including the chaos smoke),
//! the `exp_serve` load generator, and the protocol tests; any language
//! that can speak line-delimited JSON over TCP works just as well. For
//! bulk draws the client can negotiate the binary sample frame
//! ([`Client::set_binary`]) and decode its length-prefixed `f64` payload
//! ([`Client::send_expect_payload`]).
//!
//! # Retry contract
//!
//! Failures split into a [`ClientError`] taxonomy mirroring the server's
//! error codes ([`crate::protocol::code_is_retryable`]):
//!
//! * **retryable** — transport failures (connect refused, reset, the
//!   connection closing mid-frame or mid-payload), the per-attempt
//!   response deadline expiring, and structured server frames whose code
//!   is retryable (`busy`, `request_timeout`, `idle_timeout`,
//!   `unavailable`). These mean
//!   "the server didn't authoritatively answer this request"; the client
//!   reconnects (re-negotiating binary mode if it was on), sleeps an
//!   exponentially growing, deterministically jittered backoff, and sends
//!   the request again.
//! * **terminal** — structured frames with a non-retryable code
//!   (`sample_cap`, `bad_request`, `unknown_release`, `internal`) or no
//!   code at all. The server *did* answer; the frame is returned to the
//!   caller as the response.
//!
//! Retrying is safe because the protocol is idempotent by construction:
//! `sample` and `query` responses are pure functions of
//! `(release bytes, request)` — a request that half-succeeded before a
//! disconnect returns byte-identical results when replayed.
//!
//! The default [`RetryPolicy`] has `retries: 0`, so a bare
//! [`Client::connect`] behaves exactly like the pre-retry client: one
//! attempt, errors surfaced immediately.

use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use privhp_dp::rng::mix64;
use serde::Value;

use crate::protocol::code_is_retryable;

/// Default per-attempt time to wait for a response before giving up.
pub const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// How often deadline-bounded reads wake up to re-check the clock.
const CLIENT_POLL: Duration = Duration::from_millis(50);

/// Why a request failed without an authoritative answer, classified the
/// same way the server's error codes are.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport-level failure: connect refused, connection reset, or the
    /// stream ending mid-frame / mid-payload (a truncated response is
    /// detected by its missing terminating newline or short payload).
    /// Always retryable.
    Transport(String),
    /// The per-attempt response deadline ([`RetryPolicy::timeout`])
    /// expired. Always retryable.
    Timeout(String),
    /// A structured error frame from the server. Retryable exactly when
    /// its `code` is ([`code_is_retryable`]); terminal frames are not
    /// errors at this level — they're returned as responses.
    Server {
        /// The frame's machine-readable `code`, when present.
        code: Option<String>,
        /// The raw one-line frame.
        frame: String,
    },
}

impl ClientError {
    /// Whether retrying the identical request can succeed: transport and
    /// timeout failures always can; server frames follow their code.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Transport(_) | ClientError::Timeout(_) => true,
            ClientError::Server { code, .. } => code.as_deref().is_some_and(code_is_retryable),
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(m) | ClientError::Timeout(m) => f.write_str(m),
            ClientError::Server { frame, .. } => f.write_str(frame),
        }
    }
}

/// Parses a response line and, when it is an error frame (`"ok":false`),
/// returns it as a [`ClientError::Server`] carrying its code. `None` for
/// success frames and lines that don't parse as frames at all.
pub fn frame_error(line: &str) -> Option<ClientError> {
    let v = serde_json::parse_value_str(line).ok()?;
    if v.get("ok").and_then(Value::as_bool) == Some(false) {
        Some(ClientError::Server {
            code: v.get("code").and_then(Value::as_str).map(str::to_string),
            frame: line.to_string(),
        })
    } else {
        None
    }
}

/// Deadline and retry knobs of a [`Client`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (`0` = single-shot, the
    /// default — identical to the pre-retry client).
    pub retries: u32,
    /// Per-attempt response deadline: the budget from sending a request
    /// to its complete response (payload included). Also bounds connect.
    pub timeout: Duration,
    /// First backoff sleep; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed of the deterministic backoff jitter, so a retry schedule is
    /// reproducible in tests and CI.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 0,
            timeout: RESPONSE_TIMEOUT,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based): exponential
    /// `base * 2^attempt` capped at [`RetryPolicy::backoff_max`], scaled
    /// by a deterministic jitter factor in `[0.5, 1.0)` derived from
    /// `(jitter_seed, attempt)` — full determinism for tests, enough
    /// spread that a fleet of clients doesn't thunder back in lockstep.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.backoff_max);
        let h = mix64(self.jitter_seed ^ u64::from(attempt).wrapping_add(0xB0FF));
        let jitter = 0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        exp.mul_f64(jitter)
    }
}

/// One live connection's halves.
#[derive(Debug)]
struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A connection to a `privhp serve` instance that transparently
/// reconnects and retries per its [`RetryPolicy`]. Requests are answered
/// in order, so one client can carry any number of them.
#[derive(Debug)]
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Connection>,
    /// The negotiated `sample` encoding, restored after a reconnect.
    binary: bool,
}

fn dial(addr: &str, timeout: Duration) -> Result<Connection, ClientError> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| ClientError::Transport(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| ClientError::Transport(format!("{addr} resolves to no address")))?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout)
        .map_err(|e| ClientError::Transport(format!("cannot connect to {addr}: {e}")))?;
    // Request frames are one small line each; Nagle + delayed ACK would
    // serialise request/response pairs at ~40ms apiece.
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| ClientError::Transport(format!("cannot clone stream: {e}")))?,
    );
    Ok(Connection { reader, writer: stream })
}

/// Reads one complete response line under `deadline`. A stream that ends
/// before the terminating newline is a truncated (torn) response — a
/// transport error, never silently passed to the caller as a frame.
fn read_frame_deadline(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> Result<String, ClientError> {
    let mut buf = Vec::new();
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(ClientError::Timeout("timed out waiting for a response".into()));
        }
        let _ = reader.get_ref().set_read_timeout(Some(CLIENT_POLL.min(deadline - now)));
        match reader.fill_buf() {
            Ok([]) => {
                return Err(ClientError::Transport(if buf.is_empty() {
                    "server closed the connection".into()
                } else {
                    "truncated response: connection closed mid-frame".into()
                }));
            }
            Ok(bytes) => {
                if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                    buf.extend_from_slice(&bytes[..pos]);
                    reader.consume(pos + 1);
                    return String::from_utf8(buf)
                        .map_err(|_| ClientError::Transport("response is not valid UTF-8".into()));
                }
                let n = bytes.len();
                buf.extend_from_slice(bytes);
                reader.consume(n);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ClientError::Transport(format!("cannot read response: {e}"))),
        }
    }
}

/// Fills `out` exactly under `deadline`; a short stream is a truncated
/// payload (transport error).
fn read_exact_deadline(
    reader: &mut BufReader<TcpStream>,
    out: &mut [u8],
    deadline: Instant,
) -> Result<(), ClientError> {
    let mut filled = 0;
    while filled < out.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(ClientError::Timeout("timed out reading the binary payload".into()));
        }
        let _ = reader.get_ref().set_read_timeout(Some(CLIENT_POLL.min(deadline - now)));
        match reader.read(&mut out[filled..]) {
            Ok(0) => {
                return Err(ClientError::Transport(
                    "truncated payload: connection closed mid-payload".into(),
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ClientError::Transport(format!("cannot read payload: {e}"))),
        }
    }
    Ok(())
}

/// Reads a binary sample payload (8-byte LE length prefix + LE `f64`
/// lanes) under `deadline`.
fn read_payload_deadline(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> Result<Vec<f64>, ClientError> {
    let mut prefix = [0u8; 8];
    read_exact_deadline(reader, &mut prefix, deadline)?;
    let bytes = u64::from_le_bytes(prefix);
    if bytes % 8 != 0 {
        return Err(ClientError::Transport(format!(
            "payload length {bytes} is not a whole number of f64 lanes"
        )));
    }
    let n_lanes = (bytes / 8) as usize;
    let mut lanes = Vec::with_capacity(n_lanes.min(1 << 20));
    let mut chunk = [0u8; 8192];
    let mut remaining = bytes as usize;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        read_exact_deadline(reader, &mut chunk[..take], deadline)?;
        lanes.extend(
            chunk[..take].chunks_exact(8).map(|b| {
                f64::from_le_bytes(b.try_into().expect("chunks_exact yields 8-byte slices"))
            }),
        );
        remaining -= take;
    }
    Ok(lanes)
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4750`) with the default
    /// single-shot [`RetryPolicy`].
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// Connects under an explicit policy. The initial dial itself retries
    /// with backoff (a server still booting is a retryable condition).
    pub fn connect_with(addr: &str, policy: RetryPolicy) -> Result<Self, ClientError> {
        let mut attempt = 0u32;
        let conn = loop {
            match dial(addr, policy.timeout) {
                Ok(conn) => break conn,
                Err(_) if attempt < policy.retries => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        };
        Ok(Self { addr: addr.to_string(), policy, conn: Some(conn), binary: false })
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Replaces the retry policy (affects subsequent requests).
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Sends one request and returns the authoritative (trimmed) response
    /// line, retrying retryable failures per the policy. A returned
    /// `Ok` line may still be a *terminal* error frame (e.g.
    /// `sample_cap`) — that is the server's authoritative answer; `Err`
    /// means no authoritative answer was obtained within the retry
    /// budget, classified by [`ClientError`].
    pub fn request(&mut self, request_line: &str) -> Result<String, ClientError> {
        self.run(request_line, false).map(|(header, _)| header)
    }

    /// [`Client::request`] for (possibly) binary-negotiated connections:
    /// also decodes the flat `f64` lane payload following a successful
    /// binary `sample` header (`None` for ordinary JSON responses, errors
    /// included).
    pub fn request_expect_payload(
        &mut self,
        request_line: &str,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        self.run(request_line, true)
    }

    /// The retry loop shared by every request path.
    fn run(
        &mut self,
        request_line: &str,
        want_payload: bool,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let line = request_line.trim();
        if line.contains('\n') {
            // A caller bug, not a transport condition: never retried.
            return Err(ClientError::Transport("request must be a single line".into()));
        }
        let mut attempt = 0u32;
        loop {
            let error = match self.attempt(line, want_payload) {
                Ok((header, payload)) => match frame_error(&header) {
                    Some(e) if e.is_retryable() => {
                        // busy / request_timeout / idle_timeout: the
                        // server closes the connection after these.
                        self.conn = None;
                        e
                    }
                    // Success, or a terminal frame — the authoritative
                    // answer either way.
                    _ => return Ok((header, payload)),
                },
                Err(e) => {
                    self.conn = None;
                    e
                }
            };
            if attempt >= self.policy.retries {
                return Err(error);
            }
            std::thread::sleep(self.policy.backoff(attempt));
            attempt += 1;
        }
    }

    /// One attempt: ensure a connection (re-negotiating binary mode after
    /// a reconnect), send, read the response under the deadline.
    fn attempt(
        &mut self,
        line: &str,
        want_payload: bool,
    ) -> Result<(String, Option<Vec<f64>>), ClientError> {
        let deadline = Instant::now() + self.policy.timeout;
        if self.conn.is_none() {
            let mut conn = dial(&self.addr, self.policy.timeout)?;
            if self.binary {
                negotiate_binary(&mut conn, deadline)?;
            }
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("connection established above");
        exchange(conn, line, want_payload, deadline)
    }

    /// Negotiates the binary `sample` encoding on this connection (and on
    /// every reconnection); after it succeeds, send `sample` requests
    /// through [`Client::send_expect_payload`].
    pub fn set_binary(&mut self) -> Result<(), String> {
        let line = self
            .request("{\"op\":\"format\",\"encoding\":\"binary\"}")
            .map_err(|e| e.to_string())?;
        let v = serde_json::parse_value_str(&line)
            .map_err(|e| format!("unparseable format response '{line}': {e}"))?;
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            self.binary = true;
            Ok(())
        } else {
            Err(format!("format negotiation refused: {line}"))
        }
    }

    /// Sends one request frame and returns the (trimmed) response line.
    /// The request must be a single line; embedded newlines are rejected
    /// rather than silently split into several frames. (String-error
    /// wrapper over [`Client::request`].)
    pub fn send(&mut self, request_line: &str) -> Result<String, String> {
        self.request(request_line).map_err(|e| e.to_string())
    }

    /// Sends one request on a (possibly) binary-negotiated connection.
    /// Returns the one-line response header verbatim plus, when the header
    /// announces `"encoding":"binary"`, the decoded flat `f64` lane
    /// payload that followed it (`None` for ordinary JSON responses,
    /// errors included). (String-error wrapper over
    /// [`Client::request_expect_payload`].)
    pub fn send_expect_payload(
        &mut self,
        request_line: &str,
    ) -> Result<(String, Option<Vec<f64>>), String> {
        self.request_expect_payload(request_line).map_err(|e| e.to_string())
    }
}

/// One request/response exchange on a live connection.
fn exchange(
    conn: &mut Connection,
    line: &str,
    want_payload: bool,
    deadline: Instant,
) -> Result<(String, Option<Vec<f64>>), ClientError> {
    writeln!(conn.writer, "{line}")
        .and_then(|_| conn.writer.flush())
        .map_err(|e| ClientError::Transport(format!("cannot send request: {e}")))?;
    let header = read_frame_deadline(&mut conn.reader, deadline)?;
    let header = header.trim_end().to_string();
    if !want_payload {
        return Ok((header, None));
    }
    let v = serde_json::parse_value_str(&header).map_err(|e| {
        ClientError::Transport(format!("unparseable response header '{header}': {e}"))
    })?;
    // Only a successful `sample` header is followed by a payload (the
    // `format` ack also carries an `encoding` field, but no payload).
    let binary_sample = v.get("ok").and_then(Value::as_bool) == Some(true)
        && v.get("op").and_then(Value::as_str) == Some("sample")
        && v.get("encoding").and_then(Value::as_str) == Some("binary");
    if !binary_sample {
        return Ok((header, None));
    }
    let lanes = read_payload_deadline(&mut conn.reader, deadline)?;
    Ok((header, Some(lanes)))
}

/// Re-establishes binary mode on a fresh connection mid-retry.
fn negotiate_binary(conn: &mut Connection, deadline: Instant) -> Result<(), ClientError> {
    let (ack, _) = exchange(conn, "{\"op\":\"format\",\"encoding\":\"binary\"}", false, deadline)?;
    let ok =
        serde_json::parse_value_str(&ack).ok().and_then(|v| v.get("ok").and_then(Value::as_bool))
            == Some(true);
    if ok {
        Ok(())
    } else {
        Err(ClientError::Transport(format!("format renegotiation refused: {ack}")))
    }
}

/// Connects, sends one request, returns the response line (single-shot,
/// like the default policy).
pub fn oneshot(addr: &str, request_line: &str) -> Result<String, String> {
    Client::connect(addr).map_err(|e| e.to_string())?.send(request_line)
}

/// [`oneshot`] under an explicit deadline/retry policy.
pub fn oneshot_with(
    addr: &str,
    request_line: &str,
    policy: RetryPolicy,
) -> Result<String, ClientError> {
    Client::connect_with(addr, policy)?.request(request_line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy { retries: 8, ..RetryPolicy::default() };
        let a: Vec<Duration> = (0..8).map(|i| policy.backoff(i)).collect();
        let b: Vec<Duration> = (0..8).map(|i| policy.backoff(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            let exp = policy
                .backoff_base
                .saturating_mul((1usize << i.min(31)) as u32)
                .min(policy.backoff_max);
            assert!(*d >= exp / 2, "attempt {i}: {d:?} below half the nominal {exp:?}");
            assert!(*d <= exp, "attempt {i}: {d:?} above the nominal {exp:?}");
            assert!(*d <= policy.backoff_max, "attempt {i} over the cap");
        }
        // Late attempts sit at the (jittered) cap.
        assert!(a[7] >= policy.backoff_max / 2);
        // A different seed jitters differently.
        let other = RetryPolicy { jitter_seed: 1, ..policy };
        assert!((0..8).any(|i| other.backoff(i) != a[i as usize]));
    }

    #[test]
    fn frame_errors_classify_like_the_server_codes() {
        let busy = frame_error("{\"ok\":false,\"error\":\"busy\",\"code\":\"busy\"}").unwrap();
        assert!(busy.is_retryable());
        let cap =
            frame_error("{\"ok\":false,\"error\":\"too big\",\"code\":\"sample_cap\"}").unwrap();
        assert!(!cap.is_retryable());
        let codeless = frame_error("{\"ok\":false,\"error\":\"invalid JSON\"}").unwrap();
        assert!(!codeless.is_retryable(), "codeless frames are terminal");
        assert!(frame_error("{\"ok\":true,\"op\":\"list\"}").is_none());
        assert!(frame_error("not a frame").is_none());
        assert!(ClientError::Transport("reset".into()).is_retryable());
        assert!(ClientError::Timeout("deadline".into()).is_retryable());
    }
}
