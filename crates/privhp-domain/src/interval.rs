//! The unit interval `[0,1]` with the dyadic decomposition — the paper's
//! `d = 1` case, provided with scalar points for ergonomic 1-D use.
//!
//! Level-`l` subdomains are the dyadic intervals `[i·2^{-l}, (i+1)·2^{-l})`;
//! `γ_l = 2^{-l}` and `Γ_l = 1` for every level, which is what collapses the
//! Corollary-1 bound to `O(log²(M)/(εn) + ‖tail‖/(Mn))` in one dimension.

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::path::Path;
use crate::HierarchicalDomain;

/// The unit interval `[0,1]` under absolute distance, dyadically decomposed.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UnitInterval;

impl UnitInterval {
    /// Creates the interval domain.
    pub fn new() -> Self {
        Self
    }

    /// The dyadic interval `[lo, hi)` named by `theta`.
    pub fn cell_bounds(&self, theta: &Path) -> (f64, f64) {
        let width = 2f64.powi(-(theta.level() as i32));
        let lo = theta.bits() as f64 * width;
        (lo, lo + width)
    }
}

impl HierarchicalDomain for UnitInterval {
    type Point = f64;

    fn locate(&self, p: &f64, level: usize) -> Path {
        assert!((0.0..=1.0).contains(p), "point {p} outside [0,1]");
        assert!(level <= self.max_level(), "level {level} too deep");
        let x = p.min(1.0 - f64::EPSILON);
        // The level-l cell index is simply the top l bits of x.
        let idx = (x * 2f64.powi(level as i32)) as u64;
        Path::from_bits(idx, level)
    }

    fn diameter(&self, theta: &Path) -> f64 {
        self.level_diameter(theta.level())
    }

    fn level_diameter(&self, level: usize) -> f64 {
        2f64.powi(-(level as i32))
    }

    fn level_diameter_sum(&self, _level: usize) -> f64 {
        1.0
    }

    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> f64 {
        let (lo, hi) = self.cell_bounds(theta);
        rng.gen_range(lo..hi)
    }

    fn point_lanes(&self) -> usize {
        1
    }

    fn write_point(&self, p: &f64, out: &mut Vec<f64>) {
        out.push(*p);
    }

    fn read_point(&self, lanes: &[f64]) -> f64 {
        lanes[0]
    }

    fn distance(&self, a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    fn max_level(&self) -> usize {
        50
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn locate_is_binary_expansion() {
        let iv = UnitInterval::new();
        assert_eq!(iv.locate(&0.0, 3).to_string(), "000");
        assert_eq!(iv.locate(&0.49, 1).to_string(), "0");
        assert_eq!(iv.locate(&0.51, 1).to_string(), "1");
        assert_eq!(iv.locate(&0.625, 3).to_string(), "101");
        assert_eq!(iv.locate(&1.0, 3).to_string(), "111");
    }

    #[test]
    fn cell_bounds_partition() {
        let iv = UnitInterval::new();
        let level = 4;
        let mut edge = 0.0;
        for i in 0..(1u64 << level) {
            let (lo, hi) = iv.cell_bounds(&Path::from_bits(i, level));
            assert!((lo - edge).abs() < 1e-12, "cells must tile the interval");
            edge = hi;
        }
        assert!((edge - 1.0).abs() < 1e-12);
    }

    #[test]
    fn locate_agrees_with_hypercube_d1() {
        let iv = UnitInterval::new();
        let cube = crate::Hypercube::new(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let x: f64 = rng.gen_range(0.0..1.0);
            for level in [1usize, 3, 7, 12] {
                assert_eq!(
                    iv.locate(&x, level),
                    cube.locate(&vec![x], level),
                    "interval and 1-D hypercube must agree at x={x}, level={level}"
                );
            }
        }
    }

    #[test]
    fn gamma_and_gamma_sum() {
        let iv = UnitInterval::new();
        assert_eq!(iv.level_diameter(3), 0.125);
        assert_eq!(iv.level_diameter_sum(3), 1.0);
        assert_eq!(iv.total_diameter(), 1.0);
    }

    #[test]
    fn sample_roundtrip() {
        let iv = UnitInterval::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for bits in 0..8u64 {
            let theta = Path::from_bits(bits, 3);
            for _ in 0..50 {
                let x = iv.sample_uniform(&theta, &mut rng);
                assert_eq!(iv.locate(&x, 3), theta);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn negative_point_rejected() {
        let _ = UnitInterval::new().locate(&-0.1, 2);
    }
}
