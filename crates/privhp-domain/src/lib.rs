#![warn(missing_docs)]

//! Metric-domain substrate: hierarchical binary decompositions.
//!
//! PrivHP's accuracy analysis (paper Theorem 3) applies to **any** metric
//! space equipped with a binary hierarchical decomposition: a family of
//! subdomains `Ω_θ` indexed by bit strings `θ ∈ {0,1}^{≤L}` where
//! `Ω_{θ0} ∪ Ω_{θ1} = Ω_θ` disjointly. The utility bound depends on the
//! domain only through the level diameters `γ_l = max_θ diam(Ω_θ)` and their
//! level sums `Γ_l = Σ_θ diam(Ω_θ)`.
//!
//! This crate provides:
//!
//! * [`path`] — the bit-string index `θ` ([`path::Path`]) with cheap
//!   parent/child arithmetic and a collision-free `u64` sketch key;
//! * [`hypercube`] — the canonical domain of the paper's Corollary 1:
//!   `[0,1]^d` under `l∞` with coordinate-cycling median splits
//!   (`γ_l ≍ 2^{-⌊l/d⌋}`, `Γ_l = 2^l·2^{-⌊l/d⌋}`);
//! * [`interval`] — the 1-D dyadic special case with scalar points;
//! * [`ipv4`] — the IPv4 address space under normalised absolute distance,
//!   decomposed by address-prefix (one of the paper's motivating domains);
//! * [`geo`] — geographic lat/lon boxes mapped onto `[0,1]²`.
//!
//! All domains implement [`HierarchicalDomain`], the only interface the
//! PrivHP core needs.

pub mod categorical;
pub mod geo;
pub mod hypercube;
pub mod interval;
pub mod ipv4;
pub mod path;
pub mod product;

pub use categorical::Categorical;
pub use geo::{GeoBox, GeoPoint};
pub use hypercube::Hypercube;
pub use interval::UnitInterval;
pub use ipv4::Ipv4Space;
pub use path::Path;
pub use product::ProductDomain;

use rand::RngCore;

/// A metric space with a fixed binary hierarchical decomposition.
///
/// Implementors must guarantee that for every point `p` and level `l`,
/// `locate(p, l)` is the unique length-`l` path with `p ∈ Ω_θ`, and that
/// `locate(p, l+1)` is a child of `locate(p, l)` (the decomposition is
/// nested). The PrivHP core relies on this nesting to update one counter per
/// level during the single stream pass (Algorithm 1, lines 9–15).
pub trait HierarchicalDomain {
    /// Point type of the space.
    type Point: Clone + std::fmt::Debug;

    /// The unique level-`level` subdomain containing `p`.
    fn locate(&self, p: &Self::Point, level: usize) -> Path;

    /// Locates a whole chunk of points at once into `out` (cleared and
    /// refilled, one path per point in order). The batched ingest path
    /// calls this once per chunk; domains whose per-point `locate`
    /// dispatches on shape (dimension, fast paths) should override it to
    /// hoist that dispatch out of the loop.
    fn locate_batch(&self, points: &[Self::Point], level: usize, out: &mut Vec<Path>) {
        out.clear();
        out.extend(points.iter().map(|p| self.locate(p, level)));
    }

    /// Diameter of the subdomain `Ω_θ`.
    fn diameter(&self, theta: &Path) -> f64;

    /// `γ_l`: the maximum subdomain diameter at level `l`.
    fn level_diameter(&self, level: usize) -> f64;

    /// `Γ_l = Σ_{θ ∈ {0,1}^l} diam(Ω_θ)`: the summed diameter at level `l`.
    fn level_diameter_sum(&self, level: usize) -> f64;

    /// Draws a uniform point from `Ω_θ`.
    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> Self::Point;

    /// Number of `f64` lanes one point occupies in the flat row-major
    /// batch encoding ([`HierarchicalDomain::write_point`] /
    /// [`HierarchicalDomain::read_point`]).
    fn point_lanes(&self) -> usize;

    /// Appends `p`'s flat encoding — exactly
    /// [`HierarchicalDomain::point_lanes`] `f64` values — to `out`.
    /// [`HierarchicalDomain::read_point`] must invert it exactly
    /// (`read_point(write_point(p)) == p` bit-for-bit).
    fn write_point(&self, p: &Self::Point, out: &mut Vec<f64>);

    /// Decodes one point from a [`HierarchicalDomain::point_lanes`]-long
    /// lane slice (the inverse of [`HierarchicalDomain::write_point`]).
    fn read_point(&self, lanes: &[f64]) -> Self::Point;

    /// Draws one uniform point per path in `thetas`, appending each
    /// point's flat encoding to `out` (row-major, `thetas.len() ·
    /// point_lanes()` values total). The default loops the scalar
    /// [`HierarchicalDomain::sample_uniform`]; domains on the bulk
    /// sampling hot path override it to hoist the per-draw shape dispatch
    /// and heap allocation out of the loop.
    fn sample_uniform_many<R: RngCore>(&self, thetas: &[Path], rng: &mut R, out: &mut Vec<f64>) {
        out.reserve(thetas.len() * self.point_lanes());
        for theta in thetas {
            let p = self.sample_uniform(theta, rng);
            self.write_point(&p, out);
        }
    }

    /// Metric distance between two points.
    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64;

    /// Deepest level the decomposition supports without exhausting the
    /// precision of the point representation.
    fn max_level(&self) -> usize;

    /// Diameter of the whole space `Ω` (= `level_diameter(0)`).
    fn total_diameter(&self) -> f64 {
        self.level_diameter(0)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use rand::SeedableRng;

    /// Generic nesting check run against every domain implementation.
    fn check_nesting<D: HierarchicalDomain>(domain: &D, points: &[D::Point], max_level: usize) {
        for p in points {
            let mut prev = Path::root();
            for l in 0..=max_level.min(domain.max_level()) {
                let theta = domain.locate(p, l);
                assert_eq!(theta.level(), l);
                if l > 0 {
                    assert_eq!(
                        theta.parent().expect("non-root has parent"),
                        prev,
                        "decomposition must be nested at level {l}"
                    );
                }
                prev = theta;
            }
        }
    }

    #[test]
    fn all_domains_are_nested() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cube = Hypercube::new(3);
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..3).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0)).collect())
            .collect();
        check_nesting(&cube, &pts, 20);

        let iv = UnitInterval::new();
        let pts: Vec<f64> = (0..20).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0)).collect();
        check_nesting(&iv, &pts, 30);

        let ip = Ipv4Space::new();
        let pts: Vec<u32> = (0..20).map(|_| rand::Rng::gen(&mut rng)).collect();
        check_nesting(&ip, &pts, 32);
    }
}
