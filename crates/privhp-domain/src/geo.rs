//! Geographic coordinates — the paper's other motivating domain (§1.2).
//!
//! A [`GeoBox`] is an axis-aligned latitude/longitude window (e.g. a city)
//! mapped affinely onto `[0,1]²` and decomposed with the hypercube's
//! coordinate-cycling splits. Distances are the normalised `l∞` distance in
//! the mapped square — i.e. equirectangular, which is the right trade-off
//! for city-scale windows and keeps the decomposition's diameter bookkeeping
//! exact.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::hypercube::Hypercube;
use crate::path::Path;
use crate::HierarchicalDomain;

/// A latitude/longitude point in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point.
    pub fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }
}

/// A geographic window decomposed hierarchically via `[0,1]²`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoBox {
    lat_min: f64,
    lat_max: f64,
    lon_min: f64,
    lon_max: f64,
    inner: Hypercube,
}

impl GeoBox {
    /// Creates a window covering `[lat_min, lat_max] × [lon_min, lon_max]`.
    ///
    /// # Panics
    /// Panics on an empty or inverted window.
    pub fn new(lat_min: f64, lat_max: f64, lon_min: f64, lon_max: f64) -> Self {
        assert!(lat_max > lat_min, "empty latitude range");
        assert!(lon_max > lon_min, "empty longitude range");
        Self { lat_min, lat_max, lon_min, lon_max, inner: Hypercube::new(2) }
    }

    /// Maps a geographic point into the unit square.
    pub fn normalise(&self, p: &GeoPoint) -> Vec<f64> {
        vec![
            (p.lat - self.lat_min) / (self.lat_max - self.lat_min),
            (p.lon - self.lon_min) / (self.lon_max - self.lon_min),
        ]
    }

    /// Maps a unit-square point back to geographic coordinates.
    pub fn denormalise(&self, q: &[f64]) -> GeoPoint {
        GeoPoint {
            lat: self.lat_min + q[0] * (self.lat_max - self.lat_min),
            lon: self.lon_min + q[1] * (self.lon_max - self.lon_min),
        }
    }

    /// Whether the window contains `p`.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        (self.lat_min..=self.lat_max).contains(&p.lat)
            && (self.lon_min..=self.lon_max).contains(&p.lon)
    }
}

impl HierarchicalDomain for GeoBox {
    type Point = GeoPoint;

    fn locate(&self, p: &GeoPoint, level: usize) -> Path {
        assert!(self.contains(p), "point {p:?} outside the geographic window");
        self.inner.locate(&self.normalise(p), level)
    }

    fn diameter(&self, theta: &Path) -> f64 {
        self.inner.diameter(theta)
    }

    fn level_diameter(&self, level: usize) -> f64 {
        self.inner.level_diameter(level)
    }

    fn level_diameter_sum(&self, level: usize) -> f64 {
        self.inner.level_diameter_sum(level)
    }

    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> GeoPoint {
        self.denormalise(&self.inner.sample_uniform(theta, rng))
    }

    fn point_lanes(&self) -> usize {
        2
    }

    fn write_point(&self, p: &GeoPoint, out: &mut Vec<f64>) {
        out.push(p.lat);
        out.push(p.lon);
    }

    fn read_point(&self, lanes: &[f64]) -> GeoPoint {
        GeoPoint { lat: lanes[0], lon: lanes[1] }
    }

    fn distance(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        self.inner.distance(&self.normalise(a), &self.normalise(b))
    }

    fn max_level(&self) -> usize {
        self.inner.max_level()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sydney() -> GeoBox {
        GeoBox::new(-34.1, -33.6, 150.9, 151.35)
    }

    #[test]
    fn normalise_roundtrip() {
        let boxx = sydney();
        let p = GeoPoint::new(-33.87, 151.21); // Sydney CBD
        let q = boxx.normalise(&p);
        assert!(q.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let back = boxx.denormalise(&q);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn locate_consistent_with_hypercube() {
        let boxx = sydney();
        let p = GeoPoint::new(-33.87, 151.21);
        let theta = boxx.locate(&p, 6);
        assert_eq!(theta.level(), 6);
        // Re-locating a sampled point from the same cell lands in the cell.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let s = boxx.sample_uniform(&theta, &mut rng);
        assert_eq!(boxx.locate(&s, 6), theta);
    }

    #[test]
    fn distance_zero_on_self() {
        let boxx = sydney();
        let p = GeoPoint::new(-33.9, 151.0);
        assert_eq!(boxx.distance(&p, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the geographic window")]
    fn point_outside_window_rejected() {
        let _ = sydney().locate(&GeoPoint::new(0.0, 0.0), 3);
    }

    #[test]
    #[should_panic(expected = "empty latitude range")]
    fn inverted_window_rejected() {
        let _ = GeoBox::new(1.0, 0.0, 0.0, 1.0);
    }
}
