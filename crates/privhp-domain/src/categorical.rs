//! A categorical (discrete, unordered) domain — exercising Theorem 3's
//! "any metric space" generality.
//!
//! Categories `0..m` are arranged at the leaves of a balanced binary tree;
//! the metric is the discrete one (`d(a,b) = 1` for `a ≠ b`), under which
//! a subdomain's diameter is `1` while it holds more than one category and
//! `0` once it is a single category. The Theorem-3 machinery applies
//! verbatim: `γ_l = 1` for `l < ⌈log₂ m⌉` and `0` afterwards, so the
//! utility bound becomes a bound on total-variation-style error — the
//! natural notion for categorical data.

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::path::Path;
use crate::HierarchicalDomain;

/// A categorical domain of `m` categories under the discrete metric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Categorical {
    categories: u64,
    depth: usize,
}

impl Categorical {
    /// Creates a domain with `categories` categories (padded internally to
    /// the next power of two for a balanced tree; phantom categories never
    /// receive or emit mass).
    ///
    /// # Panics
    /// Panics unless `2 ≤ categories ≤ 2^24`.
    pub fn new(categories: u64) -> Self {
        assert!((2..=(1 << 24)).contains(&categories), "categories must be in 2..=2^24");
        let depth = (categories as f64).log2().ceil() as usize;
        Self { categories, depth }
    }

    /// Number of real categories.
    pub fn categories(&self) -> u64 {
        self.categories
    }

    /// The category range `[lo, hi]` (inclusive, clamped to real
    /// categories) covered by a node. Paths deeper than the tree depth
    /// denote single categories (the decomposition descends left below the
    /// leaves), so they are truncated to their depth-`depth` ancestor.
    pub fn cell_range(&self, theta: &Path) -> (u64, u64) {
        let truncated =
            if theta.level() > self.depth { theta.ancestor(self.depth) } else { *theta };
        let level = truncated.level();
        let span = 1u64 << (self.depth - level);
        let lo = truncated.bits() << (self.depth - level);
        let hi = (lo + span - 1).min(self.categories - 1);
        (lo.min(self.categories - 1), hi)
    }
}

impl HierarchicalDomain for Categorical {
    type Point = u64;

    fn locate(&self, p: &u64, level: usize) -> Path {
        assert!(*p < self.categories, "category {p} out of range");
        // Below the tree depth every deeper split keeps the same single
        // category in the left ("0") branch: the decomposition stays
        // formally binary at every level.
        if level <= self.depth {
            Path::from_bits(p >> (self.depth - level), level)
        } else {
            let mut theta = Path::from_bits(*p, self.depth);
            for _ in self.depth..level {
                theta = theta.left();
            }
            theta
        }
    }

    fn diameter(&self, theta: &Path) -> f64 {
        let (lo, hi) = self.cell_range(theta);
        if lo == hi {
            0.0
        } else {
            1.0
        }
    }

    fn level_diameter(&self, level: usize) -> f64 {
        if level < self.depth {
            1.0
        } else {
            0.0
        }
    }

    fn level_diameter_sum(&self, level: usize) -> f64 {
        if level >= self.depth {
            return 0.0;
        }
        // Number of level-`level` nodes spanning > 1 real category.
        let span = 1u64 << (self.depth - level);
        let full = self.categories / span;
        let partial = if self.categories % span > 1 { 1 } else { 0 };
        (full + partial) as f64
    }

    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> u64 {
        let (lo, hi) = self.cell_range(theta);
        rng.gen_range(lo..=hi)
    }

    fn point_lanes(&self) -> usize {
        1
    }

    fn write_point(&self, p: &u64, out: &mut Vec<f64>) {
        // Categories are capped at 2^24 ≪ 2^53, so the u64 → f64 codec is
        // lossless.
        out.push(*p as f64);
    }

    fn read_point(&self, lanes: &[f64]) -> u64 {
        lanes[0] as u64
    }

    fn distance(&self, a: &u64, b: &u64) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }

    fn max_level(&self) -> usize {
        Path::MAX_LEVEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn locate_is_prefix_of_category_bits() {
        let d = Categorical::new(8);
        assert_eq!(d.locate(&5, 3).bits(), 5);
        assert_eq!(d.locate(&5, 1).bits(), 1); // 5 = 0b101 → top bit 1
        assert_eq!(d.locate(&5, 0), Path::root());
    }

    #[test]
    fn non_power_of_two_padding() {
        let d = Categorical::new(6); // padded to 8
        for c in 0..6u64 {
            let theta = d.locate(&c, 3);
            let (lo, hi) = d.cell_range(&theta);
            assert!(lo <= c && c <= hi);
        }
        // Phantom categories 6,7 are invalid inputs.
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_category_rejected() {
        let d = Categorical::new(6);
        let _ = d.locate(&7, 3);
    }

    #[test]
    fn diameters_are_discrete() {
        let d = Categorical::new(8);
        assert_eq!(d.level_diameter(0), 1.0);
        assert_eq!(d.level_diameter(2), 1.0);
        assert_eq!(d.level_diameter(3), 0.0, "single categories have diameter 0");
        assert_eq!(d.diameter(&Path::from_bits(0b101, 3)), 0.0);
        assert_eq!(d.diameter(&Path::from_bits(0b10, 2)), 1.0);
    }

    #[test]
    fn gamma_sum_counts_multi_category_nodes() {
        let d = Categorical::new(8);
        assert_eq!(d.level_diameter_sum(0), 1.0);
        assert_eq!(d.level_diameter_sum(1), 2.0);
        assert_eq!(d.level_diameter_sum(2), 4.0);
        assert_eq!(d.level_diameter_sum(3), 0.0);
    }

    #[test]
    fn locate_below_depth_descends_left() {
        let d = Categorical::new(4);
        let deep = d.locate(&3, 5);
        assert_eq!(deep.level(), 5);
        assert_eq!(deep.ancestor(2).bits(), 3);
        assert_eq!(deep.branch_at(3), 0);
        assert_eq!(deep.branch_at(4), 0);
    }

    #[test]
    fn sample_stays_in_cell() {
        let d = Categorical::new(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for c in 0..10u64 {
            for level in [0usize, 1, 2, 3, 4] {
                let theta = d.locate(&c, level);
                let s = d.sample_uniform(&theta, &mut rng);
                assert!(s < 10, "sampled phantom category {s}");
                assert_eq!(d.locate(&s, level), theta);
            }
        }
    }

    #[test]
    fn discrete_metric() {
        let d = Categorical::new(4);
        assert_eq!(d.distance(&1, &1), 0.0);
        assert_eq!(d.distance(&1, &3), 1.0);
    }
}
