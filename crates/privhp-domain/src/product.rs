//! Product domains — mixed-type data under the max (`l∞`-style) metric.
//!
//! Real tabular data mixes continuous and categorical attributes. A
//! [`ProductDomain<A, B>`] decomposes the product space `Ω_A × Ω_B` by
//! alternating splits (even levels split the `A` component, odd levels the
//! `B` component), with metric `d((a,b),(a',b')) = max(d_A(a,a'),
//! d_B(b,b'))` — the same construction Corollary 1 uses to build `[0,1]^d`
//! out of `d` intervals, generalised to heterogeneous factors. Theorem 3
//! applies unchanged because the product again has level-uniform diameters
//! whenever both factors do (every domain in this crate does).

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::path::Path;
use crate::HierarchicalDomain;

/// The product of two hierarchical domains with alternating splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProductDomain<A, B> {
    left: A,
    right: B,
}

impl<A: HierarchicalDomain, B: HierarchicalDomain> ProductDomain<A, B> {
    /// Creates the product `Ω_A × Ω_B`.
    pub fn new(left: A, right: B) -> Self {
        Self { left, right }
    }

    /// The `A` factor.
    pub fn left(&self) -> &A {
        &self.left
    }

    /// The `B` factor.
    pub fn right(&self) -> &B {
        &self.right
    }

    /// How many of the first `level` splits belong to each factor:
    /// `(⌈level/2⌉, ⌊level/2⌋)`.
    #[inline]
    fn factor_levels(level: usize) -> (usize, usize) {
        (level.div_ceil(2), level / 2)
    }

    /// Splits a product path into its factor paths.
    fn split_path(&self, theta: &Path) -> (Path, Path) {
        let mut a = Path::root();
        let mut b = Path::root();
        for i in 0..theta.level() {
            let bit = theta.branch_at(i);
            if i % 2 == 0 {
                a = a.child(bit);
            } else {
                b = b.child(bit);
            }
        }
        (a, b)
    }
}

impl<A: HierarchicalDomain, B: HierarchicalDomain> HierarchicalDomain for ProductDomain<A, B> {
    type Point = (A::Point, B::Point);

    fn locate(&self, p: &Self::Point, level: usize) -> Path {
        let (la, lb) = Self::factor_levels(level);
        let pa = self.left.locate(&p.0, la);
        let pb = self.right.locate(&p.1, lb);
        let mut theta = Path::root();
        for i in 0..level {
            let bit = if i % 2 == 0 { pa.branch_at(i / 2) } else { pb.branch_at(i / 2) };
            theta = theta.child(bit);
        }
        theta
    }

    fn diameter(&self, theta: &Path) -> f64 {
        let (pa, pb) = self.split_path(theta);
        self.left.diameter(&pa).max(self.right.diameter(&pb))
    }

    fn level_diameter(&self, level: usize) -> f64 {
        let (la, lb) = Self::factor_levels(level);
        self.left.level_diameter(la).max(self.right.level_diameter(lb))
    }

    fn level_diameter_sum(&self, level: usize) -> f64 {
        // Level-uniform factors: every level-`level` product cell has the
        // same diameter, and there are 2^level of them.
        2f64.powi(level as i32) * self.level_diameter(level)
    }

    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> Self::Point {
        let (pa, pb) = self.split_path(theta);
        (self.left.sample_uniform(&pa, rng), self.right.sample_uniform(&pb, rng))
    }

    fn point_lanes(&self) -> usize {
        self.left.point_lanes() + self.right.point_lanes()
    }

    fn write_point(&self, p: &Self::Point, out: &mut Vec<f64>) {
        self.left.write_point(&p.0, out);
        self.right.write_point(&p.1, out);
    }

    fn read_point(&self, lanes: &[f64]) -> Self::Point {
        let (la, lb) = lanes.split_at(self.left.point_lanes());
        (self.left.read_point(la), self.right.read_point(lb))
    }

    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        self.left.distance(&a.0, &b.0).max(self.right.distance(&a.1, &b.1))
    }

    fn max_level(&self) -> usize {
        (2 * self.left.max_level().min(self.right.max_level())).min(Path::MAX_LEVEL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Categorical, UnitInterval};
    use rand::SeedableRng;

    fn mixed() -> ProductDomain<UnitInterval, Categorical> {
        ProductDomain::new(UnitInterval::new(), Categorical::new(8))
    }

    #[test]
    fn locate_interleaves_factors() {
        let d = mixed();
        // x = 0.75 → interval bits 1,1,...; category 5 = 0b101.
        let theta = d.locate(&(0.75, 5), 6);
        // Even positions (0,2,4) = interval bits; odd (1,3,5) = category.
        assert_eq!(theta.branch_at(0), 1); // x: first bit of 0.75
        assert_eq!(theta.branch_at(1), 1); // cat: first bit of 5
        assert_eq!(theta.branch_at(2), 1); // x: second bit
        assert_eq!(theta.branch_at(3), 0); // cat: second bit
        assert_eq!(theta.branch_at(5), 1); // cat: third bit
    }

    #[test]
    fn nesting_holds() {
        let d = mixed();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p =
                (rand::Rng::gen_range(&mut rng, 0.0..1.0), rand::Rng::gen_range(&mut rng, 0u64..8));
            let mut prev = Path::root();
            for l in 0..=10 {
                let theta = d.locate(&p, l);
                if l > 0 {
                    assert_eq!(theta.parent().unwrap(), prev);
                }
                prev = theta;
            }
        }
    }

    #[test]
    fn diameter_is_max_of_factors() {
        let d = mixed();
        // Level 0: both factors full → max(1, 1) = 1.
        assert_eq!(d.level_diameter(0), 1.0);
        // Level 6: interval split 3x (diam 1/8), category split 3x (diam 0)
        // → max = 1/8.
        assert!((d.level_diameter(6) - 0.125).abs() < 1e-12);
        // Level 2: interval 1 split (1/2), category 1 split (1) → 1.
        assert_eq!(d.level_diameter(2), 1.0);
    }

    #[test]
    fn sample_roundtrip() {
        let d = mixed();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let p =
                (rand::Rng::gen_range(&mut rng, 0.0..1.0), rand::Rng::gen_range(&mut rng, 0u64..8));
            let theta = d.locate(&p, 8);
            let s = d.sample_uniform(&theta, &mut rng);
            assert_eq!(d.locate(&s, 8), theta, "round-trip failed for {p:?}");
        }
    }

    #[test]
    fn max_metric() {
        let d = mixed();
        assert_eq!(d.distance(&(0.1, 3), &(0.1, 3)), 0.0);
        assert_eq!(d.distance(&(0.1, 3), &(0.1, 4)), 1.0); // category flip
        assert!((d.distance(&(0.1, 3), &(0.4, 3)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn privhp_runs_on_product_domain() {
        // Smoke test: mixed continuous × categorical stream through the
        // full pipeline. (The domain crate cannot depend on the core crate,
        // so this lives here as a structural sanity check of the interface;
        // the full end-to-end run is in the root integration tests.)
        let d = mixed();
        let theta = d.locate(&(0.3, 2), 4);
        assert_eq!(theta.level(), 4);
        assert!(d.diameter(&theta) <= d.level_diameter(4) + 1e-12);
    }

    #[test]
    fn interval_squared_matches_hypercube_diameters() {
        // interval × interval should reproduce the 2-D hypercube's level
        // diameters (the Corollary-1 construction).
        let prod = ProductDomain::new(UnitInterval::new(), UnitInterval::new());
        let cube = crate::Hypercube::new(2);
        for l in 0..16 {
            assert!(
                (prod.level_diameter(l) - cube.level_diameter(l)).abs() < 1e-12,
                "level {l}: product {} vs cube {}",
                prod.level_diameter(l),
                cube.level_diameter(l)
            );
        }
    }
}
