//! The hypercube `[0,1]^d` under `l∞` — the domain of the paper's
//! Corollary 1.
//!
//! The "natural hierarchical binary decomposition" (paper §8, Lemma 10) cuts
//! through the middle along one coordinate hyperplane per level, cycling
//! through coordinates: level `l` splits coordinate `l mod d`. After `l`
//! splits, coordinate `c` has been halved `q_c(l) = ⌊l/d⌋ + [l mod d > c]`
//! times, so the box's `l∞` diameter is `2^{-⌊l/d⌋}` and
//! `Γ_l = 2^l · 2^{-⌊l/d⌋}` (= `2^{(1-1/d)l}` up to rounding), exactly the
//! quantities driving Corollary 1's bound.

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::path::Path;
use crate::HierarchicalDomain;

/// The unit hypercube `[0,1]^d` with the coordinate-cycling median
/// decomposition, under the `l∞` metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hypercube {
    dim: usize,
}

impl Hypercube {
    /// Creates the hypercube of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim }
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of times coordinate `c` has been split after `level` total
    /// splits.
    #[inline]
    fn splits_of_coord(&self, level: usize, c: usize) -> usize {
        level / self.dim + usize::from(level % self.dim > c)
    }

    /// The axis-aligned box `[lo, hi)` denoted by `theta`, as per-coordinate
    /// bounds.
    pub fn cell_bounds(&self, theta: &Path) -> Vec<(f64, f64)> {
        let mut lo = vec![0.0f64; self.dim];
        let mut hi = vec![1.0f64; self.dim];
        for i in 0..theta.level() {
            let c = i % self.dim;
            let mid = 0.5 * (lo[c] + hi[c]);
            if theta.branch_at(i) == 0 {
                hi[c] = mid;
            } else {
                lo[c] = mid;
            }
        }
        lo.into_iter().zip(hi).collect()
    }

    /// Validates that every coordinate of `p` lies in `[0,1]`; points on the
    /// closed upper boundary are clamped just inside so `locate` stays
    /// well-defined.
    fn clamped(&self, p: &[f64]) -> Vec<f64> {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        p.iter()
            .map(|&x| {
                assert!((0.0..=1.0).contains(&x), "coordinate {x} outside [0,1]");
                x.min(1.0 - f64::EPSILON)
            })
            .collect()
    }
}

impl HierarchicalDomain for Hypercube {
    type Point = Vec<f64>;

    fn locate(&self, p: &Self::Point, level: usize) -> Path {
        assert!(level <= self.max_level(), "level {level} too deep");
        let p = self.clamped(p);
        let mut theta = Path::root();
        // Track per-coordinate dyadic position incrementally: after q splits
        // of coordinate c, the branch is bit q of x_c's binary expansion.
        for i in 0..level {
            let c = i % self.dim;
            let q = self.splits_of_coord(i, c); // splits of c before this one
            let scaled = p[c] * 2f64.powi(q as i32 + 1);
            let bit = (scaled as u64) & 1;
            theta = theta.child(bit as u8);
        }
        theta
    }

    fn diameter(&self, theta: &Path) -> f64 {
        self.level_diameter(theta.level())
    }

    fn level_diameter(&self, level: usize) -> f64 {
        // l∞ diameter = longest remaining side = 2^{-⌊l/d⌋}.
        2f64.powi(-((level / self.dim) as i32))
    }

    fn level_diameter_sum(&self, level: usize) -> f64 {
        2f64.powi(level as i32) * self.level_diameter(level)
    }

    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> Self::Point {
        self.cell_bounds(theta).into_iter().map(|(lo, hi)| rng.gen_range(lo..hi)).collect()
    }

    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        assert_eq!(a.len(), self.dim);
        assert_eq!(b.len(), self.dim);
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    fn max_level(&self) -> usize {
        // 52 mantissa bits per coordinate bounds the usable depth.
        Path::MAX_LEVEL.min(50 * self.dim).min(Path::MAX_LEVEL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn one_dim_locate_is_dyadic() {
        let cube = Hypercube::new(1);
        assert_eq!(cube.locate(&vec![0.3], 1).to_string(), "0");
        assert_eq!(cube.locate(&vec![0.7], 1).to_string(), "1");
        assert_eq!(cube.locate(&vec![0.3], 2).to_string(), "01"); // [0.25,0.5)
        assert_eq!(cube.locate(&vec![0.1], 3).to_string(), "000");
        assert_eq!(cube.locate(&vec![0.9], 3).to_string(), "111");
    }

    #[test]
    fn two_dim_alternates_coordinates() {
        let cube = Hypercube::new(2);
        // First split is on x (coord 0), second on y (coord 1).
        let p = vec![0.75, 0.25];
        assert_eq!(cube.locate(&p, 1).to_string(), "1"); // x in upper half
        assert_eq!(cube.locate(&p, 2).to_string(), "10"); // y in lower half
    }

    #[test]
    fn locate_matches_cell_bounds() {
        let cube = Hypercube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            for level in [0usize, 1, 4, 9, 15] {
                let theta = cube.locate(&p, level);
                for ((lo, hi), &x) in cube.cell_bounds(&theta).iter().zip(&p) {
                    assert!(
                        *lo <= x && x < *hi,
                        "point {x} outside cell [{lo},{hi}) at level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn upper_boundary_points_locate() {
        let cube = Hypercube::new(2);
        let theta = cube.locate(&vec![1.0, 1.0], 6);
        assert_eq!(theta.to_string(), "111111");
    }

    #[test]
    fn diameters_follow_corollary1() {
        let cube = Hypercube::new(2);
        assert_eq!(cube.level_diameter(0), 1.0);
        assert_eq!(cube.level_diameter(1), 1.0); // only x split: y side = 1
        assert_eq!(cube.level_diameter(2), 0.5);
        assert_eq!(cube.level_diameter(4), 0.25);
        // Γ_l = 2^l * γ_l
        assert_eq!(cube.level_diameter_sum(2), 2.0);
        assert_eq!(cube.level_diameter_sum(4), 4.0);
    }

    #[test]
    fn one_dim_gamma_sum_is_one() {
        let cube = Hypercube::new(1);
        for l in 0..20 {
            assert!((cube.level_diameter_sum(l) - 1.0).abs() < 1e-12, "Γ_l must be 1 in 1-D");
        }
    }

    #[test]
    fn sample_uniform_stays_in_cell() {
        let cube = Hypercube::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let theta = Path::from_bits(0b1101, 4);
        let bounds = cube.cell_bounds(&theta);
        for _ in 0..500 {
            let p = cube.sample_uniform(&theta, &mut rng);
            for ((lo, hi), x) in bounds.iter().zip(&p) {
                assert!(lo <= x && x < hi);
            }
        }
    }

    #[test]
    fn sampled_points_relocate_to_cell() {
        let cube = Hypercube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for bits in 0..16u64 {
            let theta = Path::from_bits(bits, 4);
            let p = cube.sample_uniform(&theta, &mut rng);
            assert_eq!(cube.locate(&p, 4), theta, "round-trip failed for θ={theta}");
        }
    }

    #[test]
    fn linf_distance() {
        let cube = Hypercube::new(3);
        let a = vec![0.1, 0.5, 0.9];
        let b = vec![0.2, 0.1, 0.8];
        assert!((cube.distance(&a, &b) - 0.4).abs() < 1e-12);
        assert_eq!(cube.distance(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_point_rejected() {
        let cube = Hypercube::new(1);
        let _ = cube.locate(&vec![1.5], 2);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = Hypercube::new(0);
    }
}
