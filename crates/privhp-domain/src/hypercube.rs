//! The hypercube `[0,1]^d` under `l∞` — the domain of the paper's
//! Corollary 1.
//!
//! The "natural hierarchical binary decomposition" (paper §8, Lemma 10) cuts
//! through the middle along one coordinate hyperplane per level, cycling
//! through coordinates: level `l` splits coordinate `l mod d`. After `l`
//! splits, coordinate `c` has been halved `q_c(l) = ⌊l/d⌋ + [l mod d > c]`
//! times, so the box's `l∞` diameter is `2^{-⌊l/d⌋}` and
//! `Γ_l = 2^l · 2^{-⌊l/d⌋}` (= `2^{(1-1/d)l}` up to rounding), exactly the
//! quantities driving Corollary 1's bound.

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::path::Path;
use crate::HierarchicalDomain;

/// The unit hypercube `[0,1]^d` with the coordinate-cycling median
/// decomposition, under the `l∞` metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hypercube {
    dim: usize,
}

impl Hypercube {
    /// Creates the hypercube of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim }
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The axis-aligned box `[lo, hi)` denoted by `theta`, as per-coordinate
    /// bounds.
    pub fn cell_bounds(&self, theta: &Path) -> Vec<(f64, f64)> {
        let mut lo = vec![0.0f64; self.dim];
        let mut hi = vec![1.0f64; self.dim];
        for i in 0..theta.level() {
            let c = i % self.dim;
            let mid = 0.5 * (lo[c] + hi[c]);
            if theta.branch_at(i) == 0 {
                hi[c] = mid;
            } else {
                lo[c] = mid;
            }
        }
        lo.into_iter().zip(hi).collect()
    }

    /// The first 52 dyadic branch bits of coordinate `x` as a fixed-point
    /// word: bit `51 − q` (from the MSB of the used range) is the branch
    /// of `x`'s `q`-th halving — `⌊x·2^{q+1}⌋ mod 2 = (⌊x·2^52⌋ >> (51−q))
    /// & 1`, exactly the digit the per-level float arithmetic used to
    /// compute one multiplication at a time.
    #[inline]
    fn dyadic_bits(&self, x: f64) -> u64 {
        assert!((0.0..=1.0).contains(&x), "coordinate {x} outside [0,1]");
        // Points on the closed upper boundary clamp just inside so every
        // branch bit is 1.
        (x.min(1.0 - f64::EPSILON) * (1u64 << 52) as f64) as u64
    }

    /// Path bits of a 1-D point: the leading `level` dyadic digits.
    #[inline]
    fn bits_1d(&self, p: &[f64], level: usize) -> u64 {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        let frac = self.dyadic_bits(p[0]);
        if level == 0 {
            0
        } else {
            frac >> (52 - level)
        }
    }

    /// Path bits of a 2-D point: the Morton mask-spread interleave of the
    /// two dyadic expansions (x first). `qx`/`qy` are the per-coordinate
    /// split counts at `level` — hoisted out so [`Hypercube::locate_batch`]
    /// computes them once per chunk.
    #[inline]
    fn bits_2d(&self, p: &[f64], level: usize, qx: usize, qy: usize) -> u64 {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        // Convert (and range-validate) both coordinates even when a
        // shallow level consumes no bits of one of them.
        let fx = self.dyadic_bits(p[0]);
        let fy = self.dyadic_bits(p[1]);
        interleave_2d(fx, fy, level, qx, qy)
    }
}

/// Interleaves two 52-bit dyadic expansions into level-`level` path bits.
/// With msb-first values, x's last branch lands at result bit 1 for even
/// levels and bit 0 for odd levels (y the other way).
#[inline]
fn interleave_2d(fx: u64, fy: u64, level: usize, qx: usize, qy: usize) -> u64 {
    let xv = if qx == 0 { 0 } else { fx >> (52 - qx) };
    let yv = if qy == 0 { 0 } else { fy >> (52 - qy) };
    if level.is_multiple_of(2) {
        (part1by1(xv) << 1) | part1by1(yv)
    } else {
        part1by1(xv) | (part1by1(yv) << 1)
    }
}

/// Splits level-`level` 2-D path bits back into the per-coordinate cell
/// indices `(xv, yv)` — the exact inverse of [`interleave_2d`].
#[inline]
fn deinterleave_2d(bits: u64, level: usize) -> (u64, u64) {
    let (ex, ey) = if level.is_multiple_of(2) { (bits >> 1, bits) } else { (bits, bits >> 1) };
    (compact1by1(ex), compact1by1(ey))
}

/// Exact `2^{-q}` for `q ≤ 1022`, assembled from the exponent bits so the
/// jitter kernels never call `powi` in a loop.
#[inline]
fn exp2_neg(q: usize) -> f64 {
    debug_assert!(q <= 1022);
    f64::from_bits((1023 - q as u64) << 52)
}

/// Spreads the low 32 bits of `v` into the even bit positions (Morton
/// "part1by1"): bit `j` of `v` moves to bit `2j`.
#[inline]
fn part1by1(mut v: u64) -> u64 {
    v &= 0xFFFF_FFFF;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Gathers the even bit positions of `v` back into the low 32 bits (Morton
/// "compact1by1"): bit `2j` of `v` moves to bit `j`. Inverse of
/// [`part1by1`].
#[inline]
fn compact1by1(mut v: u64) -> u64 {
    v &= 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v
}

impl HierarchicalDomain for Hypercube {
    type Point = Vec<f64>;

    fn locate(&self, p: &Self::Point, level: usize) -> Path {
        assert!(level <= self.max_level(), "level {level} too deep");
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        // The hot path of `PrivHpBuilder::ingest`: each coordinate's full
        // dyadic expansion is one fixed-point conversion, then every level
        // is a shift-and-mask — no per-level float work, no allocation.
        let mut bits = 0u64;
        if self.dim == 1 {
            bits = self.bits_1d(p, level);
        } else if self.dim == 2 {
            // Morton fast path: the branch sequence is the bit-interleave
            // of the two dyadic expansions (x first), done with the
            // classic mask-spread instead of a per-level loop.
            bits = self.bits_2d(p, level, level.div_ceil(2), level / 2);
        } else {
            let mut fracs = [0u64; 8];
            let spill: Vec<u64>;
            let fracs: &[u64] = if self.dim <= fracs.len() {
                for (slot, &x) in fracs.iter_mut().zip(p.iter()) {
                    *slot = self.dyadic_bits(x);
                }
                &fracs[..self.dim]
            } else {
                spill = p.iter().map(|&x| self.dyadic_bits(x)).collect();
                &spill
            };
            for i in 0..level {
                let c = i % self.dim;
                let q = i / self.dim; // splits of coordinate c before this one
                bits = (bits << 1) | ((fracs[c] >> (51 - q)) & 1);
            }
        }
        Path::from_bits(bits, level)
    }

    fn locate_batch(&self, points: &[Self::Point], level: usize, out: &mut Vec<Path>) {
        assert!(level <= self.max_level(), "level {level} too deep");
        out.clear();
        out.reserve(points.len());
        // One shape dispatch per chunk instead of per point; the 1-D and
        // 2-D bodies are array-of-lanes kernels: a gather pass converts a
        // fixed block of coordinates to fixed point, then a combine pass
        // turns the lane arrays into path bits — each pass a lane-uniform
        // loop over `[u64; LANES]` the compiler can vectorise (this is the
        // front half of the batched ingest path).
        const LANES: usize = 8;
        match self.dim {
            1 => {
                let mut fracs = [0u64; LANES];
                let mut chunks = points.chunks_exact(LANES);
                for chunk in &mut chunks {
                    for (frac, p) in fracs.iter_mut().zip(chunk) {
                        assert_eq!(p.len(), 1, "point dimension mismatch");
                        *frac = self.dyadic_bits(p[0]);
                    }
                    for &frac in &fracs {
                        let bits = if level == 0 { 0 } else { frac >> (52 - level) };
                        out.push(Path::from_bits(bits, level));
                    }
                }
                for p in chunks.remainder() {
                    out.push(Path::from_bits(self.bits_1d(p, level), level));
                }
            }
            2 => {
                let (qx, qy) = (level.div_ceil(2), level / 2);
                let mut fx = [0u64; LANES];
                let mut fy = [0u64; LANES];
                let mut chunks = points.chunks_exact(LANES);
                for chunk in &mut chunks {
                    for ((x, y), p) in fx.iter_mut().zip(fy.iter_mut()).zip(chunk) {
                        assert_eq!(p.len(), 2, "point dimension mismatch");
                        *x = self.dyadic_bits(p[0]);
                        *y = self.dyadic_bits(p[1]);
                    }
                    for (&x, &y) in fx.iter().zip(&fy) {
                        out.push(Path::from_bits(interleave_2d(x, y, level, qx, qy), level));
                    }
                }
                for p in chunks.remainder() {
                    out.push(Path::from_bits(self.bits_2d(p, level, qx, qy), level));
                }
            }
            _ => out.extend(points.iter().map(|p| self.locate(p, level))),
        }
    }

    fn diameter(&self, theta: &Path) -> f64 {
        self.level_diameter(theta.level())
    }

    fn level_diameter(&self, level: usize) -> f64 {
        // l∞ diameter = longest remaining side = 2^{-⌊l/d⌋}.
        2f64.powi(-((level / self.dim) as i32))
    }

    fn level_diameter_sum(&self, level: usize) -> f64 {
        2f64.powi(level as i32) * self.level_diameter(level)
    }

    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> Self::Point {
        self.cell_bounds(theta).into_iter().map(|(lo, hi)| rng.gen_range(lo..hi)).collect()
    }

    fn point_lanes(&self) -> usize {
        self.dim
    }

    fn write_point(&self, p: &Self::Point, out: &mut Vec<f64>) {
        assert_eq!(p.len(), self.dim, "point dimension mismatch");
        out.extend_from_slice(p);
    }

    fn read_point(&self, lanes: &[f64]) -> Self::Point {
        assert_eq!(lanes.len(), self.dim, "point dimension mismatch");
        lanes.to_vec()
    }

    fn sample_uniform_many<R: RngCore>(&self, thetas: &[Path], rng: &mut R, out: &mut Vec<f64>) {
        out.reserve(thetas.len() * self.dim);
        match self.dim {
            1 => {
                // Cells are dyadic: `lo = bits·2^{-l}`, width `2^{-l}`, both
                // exact in f64 up to `max_level`, so skipping `cell_bounds`
                // changes no bits relative to the scalar path.
                for theta in thetas {
                    let s = exp2_neg(theta.level());
                    let lo = theta.bits() as f64 * s;
                    out.push(rng.gen_range(lo..lo + s));
                }
            }
            2 => {
                const LANES: usize = 8;
                let mut lox = [0.0f64; LANES];
                let mut loy = [0.0f64; LANES];
                let mut sx = [0.0f64; LANES];
                let mut sy = [0.0f64; LANES];
                let mut us = [0.0f64; 2 * LANES];
                let mut chunks = thetas.chunks_exact(LANES);
                for chunk in &mut chunks {
                    // Decode pass: Morton de-interleave each path's bits back
                    // into per-coordinate cell origins and widths (inverse of
                    // the `bits_2d` mask-spread; all values exact dyadics).
                    for (i, theta) in chunk.iter().enumerate() {
                        let l = theta.level();
                        let (xb, yb) = deinterleave_2d(theta.bits(), l);
                        sx[i] = exp2_neg(l.div_ceil(2));
                        sy[i] = exp2_neg(l / 2);
                        lox[i] = xb as f64 * sx[i];
                        loy[i] = yb as f64 * sy[i];
                    }
                    // RNG pass: one uniform per coordinate, x before y per
                    // point — the same draw order as the scalar walk.
                    for u in &mut us {
                        *u = rng.gen();
                    }
                    // Jitter pass: place each point inside its cell. The
                    // wrap-to-`lo` nudge mirrors `gen_range`'s half-open
                    // correction, so the lanes stay bit-identical to the
                    // scalar `sample_uniform`.
                    for i in 0..LANES {
                        let x = lox[i] + sx[i] * us[2 * i];
                        out.push(if x < lox[i] + sx[i] { x } else { lox[i] });
                        let y = loy[i] + sy[i] * us[2 * i + 1];
                        out.push(if y < loy[i] + sy[i] { y } else { loy[i] });
                    }
                }
                for theta in chunks.remainder() {
                    let l = theta.level();
                    let (xb, yb) = deinterleave_2d(theta.bits(), l);
                    let (sx, sy) = (exp2_neg(l.div_ceil(2)), exp2_neg(l / 2));
                    let (lox, loy) = (xb as f64 * sx, yb as f64 * sy);
                    out.push(rng.gen_range(lox..lox + sx));
                    out.push(rng.gen_range(loy..loy + sy));
                }
            }
            _ => {
                for theta in thetas {
                    let p = self.sample_uniform(theta, rng);
                    out.extend_from_slice(&p);
                }
            }
        }
    }

    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        assert_eq!(a.len(), self.dim);
        assert_eq!(b.len(), self.dim);
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    fn max_level(&self) -> usize {
        // 52 mantissa bits per coordinate bounds the usable depth.
        Path::MAX_LEVEL.min(50 * self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn one_dim_locate_is_dyadic() {
        let cube = Hypercube::new(1);
        assert_eq!(cube.locate(&vec![0.3], 1).to_string(), "0");
        assert_eq!(cube.locate(&vec![0.7], 1).to_string(), "1");
        assert_eq!(cube.locate(&vec![0.3], 2).to_string(), "01"); // [0.25,0.5)
        assert_eq!(cube.locate(&vec![0.1], 3).to_string(), "000");
        assert_eq!(cube.locate(&vec![0.9], 3).to_string(), "111");
    }

    #[test]
    fn two_dim_alternates_coordinates() {
        let cube = Hypercube::new(2);
        // First split is on x (coord 0), second on y (coord 1).
        let p = vec![0.75, 0.25];
        assert_eq!(cube.locate(&p, 1).to_string(), "1"); // x in upper half
        assert_eq!(cube.locate(&p, 2).to_string(), "10"); // y in lower half
    }

    #[test]
    fn locate_matches_cell_bounds() {
        let cube = Hypercube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            for level in [0usize, 1, 4, 9, 15] {
                let theta = cube.locate(&p, level);
                for ((lo, hi), &x) in cube.cell_bounds(&theta).iter().zip(&p) {
                    assert!(
                        *lo <= x && x < *hi,
                        "point {x} outside cell [{lo},{hi}) at level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_dim_morton_matches_per_level_reference() {
        // The dim-2 Morton fast path must agree with the generic
        // cycle-one-coordinate-per-level reference at every level parity.
        let cube = Hypercube::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let p: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..1.0)).collect();
            for level in 0..=20 {
                let got = cube.locate(&p, level);
                let mut reference = Path::root();
                for i in 0..level {
                    let c = i % 2;
                    let scaled = p[c] * 2f64.powi((i / 2) as i32 + 1);
                    reference = reference.child(((scaled as u64) & 1) as u8);
                }
                assert_eq!(got, reference, "divergence at level {level} for {p:?}");
            }
        }
    }

    #[test]
    fn locate_batch_matches_per_point_locate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut out = Vec::new();
        for dim in 1..=3usize {
            let cube = Hypercube::new(dim);
            let pts: Vec<Vec<f64>> = (0..64)
                .map(|_| (0..dim).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0)).collect())
                .collect();
            for level in [0usize, 1, 2, 5, 11, 20] {
                cube.locate_batch(&pts, level, &mut out);
                assert_eq!(out.len(), pts.len());
                for (p, theta) in pts.iter().zip(&out) {
                    assert_eq!(*theta, cube.locate(p, level), "dim {dim} level {level}");
                }
            }
        }
    }

    #[test]
    fn upper_boundary_points_locate() {
        let cube = Hypercube::new(2);
        let theta = cube.locate(&vec![1.0, 1.0], 6);
        assert_eq!(theta.to_string(), "111111");
    }

    #[test]
    fn diameters_follow_corollary1() {
        let cube = Hypercube::new(2);
        assert_eq!(cube.level_diameter(0), 1.0);
        assert_eq!(cube.level_diameter(1), 1.0); // only x split: y side = 1
        assert_eq!(cube.level_diameter(2), 0.5);
        assert_eq!(cube.level_diameter(4), 0.25);
        // Γ_l = 2^l * γ_l
        assert_eq!(cube.level_diameter_sum(2), 2.0);
        assert_eq!(cube.level_diameter_sum(4), 4.0);
    }

    #[test]
    fn one_dim_gamma_sum_is_one() {
        let cube = Hypercube::new(1);
        for l in 0..20 {
            assert!((cube.level_diameter_sum(l) - 1.0).abs() < 1e-12, "Γ_l must be 1 in 1-D");
        }
    }

    #[test]
    fn sample_uniform_stays_in_cell() {
        let cube = Hypercube::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let theta = Path::from_bits(0b1101, 4);
        let bounds = cube.cell_bounds(&theta);
        for _ in 0..500 {
            let p = cube.sample_uniform(&theta, &mut rng);
            for ((lo, hi), x) in bounds.iter().zip(&p) {
                assert!(lo <= x && x < hi);
            }
        }
    }

    #[test]
    fn sampled_points_relocate_to_cell() {
        let cube = Hypercube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for bits in 0..16u64 {
            let theta = Path::from_bits(bits, 4);
            let p = cube.sample_uniform(&theta, &mut rng);
            assert_eq!(cube.locate(&p, 4), theta, "round-trip failed for θ={theta}");
        }
    }

    #[test]
    fn linf_distance() {
        let cube = Hypercube::new(3);
        let a = vec![0.1, 0.5, 0.9];
        let b = vec![0.2, 0.1, 0.8];
        assert!((cube.distance(&a, &b) - 0.4).abs() < 1e-12);
        assert_eq!(cube.distance(&a, &a), 0.0);
    }

    #[test]
    fn compact1by1_inverts_part1by1() {
        for v in (0..1u64 << 16).step_by(7).chain([0, 1, 0xFFFF_FFFF, 0xDEAD_BEEF]) {
            assert_eq!(compact1by1(part1by1(v)), v & 0xFFFF_FFFF, "round-trip failed for {v:#x}");
        }
        // Odd bit positions must be ignored on the way back.
        assert_eq!(compact1by1(u64::MAX), 0xFFFF_FFFF);
    }

    #[test]
    fn deinterleave_inverts_interleave_at_every_parity() {
        for level in 0..=24usize {
            let (qx, qy) = (level.div_ceil(2), level / 2);
            for seed in 0..64u64 {
                let fx = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) << 12 >> 12;
                let fy = seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) << 12 >> 12;
                let bits = interleave_2d(fx, fy, level, qx, qy);
                let (xv, yv) = deinterleave_2d(bits, level);
                assert_eq!(xv, if qx == 0 { 0 } else { fx >> (52 - qx) });
                assert_eq!(yv, if qy == 0 { 0 } else { fy >> (52 - qy) });
            }
        }
    }

    #[test]
    fn sample_uniform_many_bit_equal_to_scalar_walk() {
        // The lane kernels must reproduce the scalar `sample_uniform` loop
        // exactly (same RNG consumption, same rounding) in every dimension.
        for dim in 1..=3usize {
            let cube = Hypercube::new(dim);
            let thetas: Vec<Path> = (0..53)
                .map(|i| {
                    let level = i % 11;
                    Path::from_bits((i as u64 * 2654435761) & ((1 << level) - 1), level)
                })
                .collect();
            let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(1000 + dim as u64);
            let mut batch_rng = rand::rngs::StdRng::seed_from_u64(1000 + dim as u64);
            let scalar: Vec<f64> =
                thetas.iter().flat_map(|t| cube.sample_uniform(t, &mut scalar_rng)).collect();
            let mut batch = Vec::new();
            cube.sample_uniform_many(&thetas, &mut batch_rng, &mut batch);
            assert_eq!(scalar.len(), batch.len());
            for (a, b) in scalar.iter().zip(&batch) {
                assert_eq!(a.to_bits(), b.to_bits(), "dim {dim} lane mismatch");
            }
        }
    }

    #[test]
    fn point_codec_roundtrip() {
        let cube = Hypercube::new(3);
        let p = vec![0.125, 0.875, 0.5];
        let mut flat = Vec::new();
        cube.write_point(&p, &mut flat);
        assert_eq!(flat.len(), cube.point_lanes());
        assert_eq!(cube.read_point(&flat), p);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_point_rejected() {
        let cube = Hypercube::new(1);
        let _ = cube.locate(&vec![1.5], 2);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = Hypercube::new(0);
    }
}
