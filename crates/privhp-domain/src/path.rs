//! The bit-string subdomain index `θ ∈ {0,1}^{≤L}`.
//!
//! A [`Path`] names one node of the binary decomposition: the empty path is
//! the whole space `Ω`, and appending bit `b` descends into `Ω_{θb}`. Paths
//! are packed into a `u64` (most-significant-first within the used suffix),
//! supporting decompositions up to [`Path::MAX_LEVEL`] = 60 levels — far
//! beyond the paper's `L = log₂(εn)` for any realistic stream.

use serde::{Deserialize, Serialize};

/// A node index in the binary hierarchy: a bit string of length `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Path {
    /// The bits of θ, with bit `level-1` the most recent branch (LSB-newest
    /// packing: `bits & 1` is the *last* branching decision).
    bits: u64,
    level: u8,
}

impl Path {
    /// Deepest supported level.
    pub const MAX_LEVEL: usize = 60;

    /// The root path (the whole space, `θ = ∅`).
    pub const fn root() -> Self {
        Self { bits: 0, level: 0 }
    }

    /// Builds a path from raw bits: `bits` holds the branch decisions with
    /// the **first** decision in the most significant used position.
    ///
    /// # Panics
    /// Panics if `level > MAX_LEVEL` or `bits` has set bits beyond `level`.
    pub fn from_bits(bits: u64, level: usize) -> Self {
        assert!(level <= Self::MAX_LEVEL, "level {level} exceeds MAX_LEVEL");
        assert!(
            level == 64 || bits < (1u64 << level),
            "bits 0x{bits:x} out of range for level {level}"
        );
        Self { bits, level: level as u8 }
    }

    /// Length of the bit string (the node's level in the hierarchy).
    #[inline]
    pub fn level(&self) -> usize {
        self.level as usize
    }

    /// Raw packed bits (first branch most significant).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Whether this is the root.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.level == 0
    }

    /// Descends into child `bit` (0 = left, 1 = right).
    ///
    /// # Panics
    /// Panics if already at `MAX_LEVEL` or `bit > 1`.
    #[inline]
    pub fn child(&self, bit: u8) -> Self {
        assert!(bit <= 1, "branch bit must be 0 or 1");
        assert!((self.level as usize) < Self::MAX_LEVEL, "cannot descend below MAX_LEVEL");
        Self { bits: (self.bits << 1) | bit as u64, level: self.level + 1 }
    }

    /// Left child `θ0`.
    #[inline]
    pub fn left(&self) -> Self {
        self.child(0)
    }

    /// Right child `θ1`.
    #[inline]
    pub fn right(&self) -> Self {
        self.child(1)
    }

    /// Parent path, or `None` at the root.
    #[inline]
    pub fn parent(&self) -> Option<Self> {
        if self.level == 0 {
            None
        } else {
            Some(Self { bits: self.bits >> 1, level: self.level - 1 })
        }
    }

    /// The branch taken at step `i` (0-based from the root).
    ///
    /// # Panics
    /// Panics if `i >= level`.
    #[inline]
    pub fn branch_at(&self, i: usize) -> u8 {
        assert!(i < self.level as usize, "branch index {i} out of range");
        ((self.bits >> (self.level as usize - 1 - i)) & 1) as u8
    }

    /// Last branch taken (0 if left child of its parent, 1 if right).
    ///
    /// # Panics
    /// Panics at the root.
    #[inline]
    pub fn last_branch(&self) -> u8 {
        assert!(self.level > 0, "root has no last branch");
        (self.bits & 1) as u8
    }

    /// The sibling path (same parent, other branch), or `None` at the root.
    #[inline]
    pub fn sibling(&self) -> Option<Self> {
        if self.level == 0 {
            None
        } else {
            Some(Self { bits: self.bits ^ 1, level: self.level })
        }
    }

    /// The ancestor at `level ≤ self.level()`.
    ///
    /// # Panics
    /// Panics if `level > self.level()`.
    #[inline]
    pub fn ancestor(&self, level: usize) -> Self {
        assert!(level <= self.level as usize, "ancestor level too deep");
        Self { bits: self.bits >> (self.level as usize - level), level: level as u8 }
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &Path) -> bool {
        other.level >= self.level && other.ancestor(self.level()) == *self
    }

    /// A `u64` key that is unique across **all** levels (prefix-free
    /// encoding `1·bits`), suitable as a sketch key. Within PrivHP each
    /// level has its own sketch, but the offset keeps keys collision-free
    /// even if levels share a structure.
    #[inline]
    pub fn sketch_key(&self) -> u64 {
        (1u64 << self.level) | self.bits
    }

    /// Index of this node within its level (`0 ..= 2^level - 1`).
    #[inline]
    pub fn index_in_level(&self) -> u64 {
        self.bits
    }

    /// Inverse of [`Path::sketch_key`]: decodes the prefix-free `1·bits`
    /// encoding back into a path. Returns `None` for `0` (no marker bit)
    /// and for keys whose implied level exceeds [`Path::MAX_LEVEL`] — the
    /// binary release codec uses this to reject corrupt node keys without
    /// panicking.
    #[inline]
    pub fn from_sketch_key(key: u64) -> Option<Self> {
        if key == 0 {
            return None;
        }
        let level = 63 - key.leading_zeros() as usize;
        if level > Self::MAX_LEVEL {
            return None;
        }
        Some(Self { bits: key ^ (1u64 << level), level: level as u8 })
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.level == 0 {
            return write!(f, "ε");
        }
        for i in 0..self.level() {
            write!(f, "{}", self.branch_at(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let r = Path::root();
        assert_eq!(r.level(), 0);
        assert!(r.is_root());
        assert!(r.parent().is_none());
        assert!(r.sibling().is_none());
        assert_eq!(r.to_string(), "ε");
    }

    #[test]
    fn child_parent_roundtrip() {
        let p = Path::root().right().left().right(); // θ = 101
        assert_eq!(p.level(), 3);
        assert_eq!(p.to_string(), "101");
        assert_eq!(p.parent().unwrap().to_string(), "10");
        assert_eq!(p.parent().unwrap().parent().unwrap().to_string(), "1");
        assert_eq!(p.last_branch(), 1);
    }

    #[test]
    fn branch_at_orders_from_root() {
        let p = Path::from_bits(0b110, 3); // θ = 110
        assert_eq!(p.branch_at(0), 1);
        assert_eq!(p.branch_at(1), 1);
        assert_eq!(p.branch_at(2), 0);
    }

    #[test]
    fn sibling_flips_last_bit() {
        let p = Path::from_bits(0b10, 2);
        assert_eq!(p.sibling().unwrap(), Path::from_bits(0b11, 2));
        assert_eq!(p.sibling().unwrap().sibling().unwrap(), p);
    }

    #[test]
    fn ancestor_and_is_ancestor() {
        let p = Path::from_bits(0b1011, 4);
        assert_eq!(p.ancestor(2), Path::from_bits(0b10, 2));
        assert!(Path::from_bits(0b10, 2).is_ancestor_of(&p));
        assert!(!Path::from_bits(0b11, 2).is_ancestor_of(&p));
        assert!(p.is_ancestor_of(&p));
        assert!(Path::root().is_ancestor_of(&p));
    }

    #[test]
    fn sketch_keys_unique_across_levels() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for level in 0..=10usize {
            for bits in 0..(1u64 << level) {
                assert!(
                    seen.insert(Path::from_bits(bits, level).sketch_key()),
                    "duplicate key at level {level}, bits {bits}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_bits_validates() {
        let _ = Path::from_bits(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "MAX_LEVEL")]
    fn cannot_exceed_max_level() {
        let mut p = Path::root();
        for _ in 0..=Path::MAX_LEVEL {
            p = p.left();
        }
    }

    #[test]
    fn display_left_right() {
        assert_eq!(Path::root().left().to_string(), "0");
        assert_eq!(Path::root().left().right().to_string(), "01");
    }
}
