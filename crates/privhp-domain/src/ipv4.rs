//! The IPv4 address space — one of the paper's motivating general metric
//! domains (§1.2: "such as geographic coordinates or the IPv4 address
//! space").
//!
//! Addresses are 32-bit integers; the natural hierarchical decomposition is
//! by address prefix (level `l` = the `/l` CIDR prefix). The metric is the
//! normalised absolute address distance `|a − b| / 2^32`, under which the
//! level-`l` subdomain diameter is `2^{-l}` — identical in shape to the
//! dyadic interval, so every 1-D bound of the paper applies verbatim.

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::path::Path;
use crate::HierarchicalDomain;

/// The IPv4 address space decomposed by CIDR prefix.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Ipv4Space;

impl Ipv4Space {
    /// Creates the IPv4 domain.
    pub fn new() -> Self {
        Self
    }

    /// The CIDR block named by `theta`, as an inclusive address range.
    pub fn cell_range(&self, theta: &Path) -> (u32, u32) {
        let level = theta.level();
        assert!(level <= 32);
        if level == 0 {
            return (0, u32::MAX);
        }
        let lo = (theta.bits() as u32) << (32 - level);
        let size = if level == 32 { 1u64 } else { 1u64 << (32 - level) };
        (lo, lo + (size - 1) as u32)
    }

    /// Formats an address in dotted-quad notation.
    pub fn format_addr(addr: u32) -> String {
        format!("{}.{}.{}.{}", addr >> 24, (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff)
    }

    /// Parses dotted-quad notation.
    pub fn parse_addr(s: &str) -> Option<u32> {
        let mut parts = s.split('.');
        let mut addr = 0u32;
        for _ in 0..4 {
            let octet: u32 = parts.next()?.parse().ok()?;
            if octet > 255 {
                return None;
            }
            addr = (addr << 8) | octet;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(addr)
    }
}

impl HierarchicalDomain for Ipv4Space {
    type Point = u32;

    fn locate(&self, p: &u32, level: usize) -> Path {
        assert!(level <= 32, "IPv4 prefixes have at most 32 bits");
        let bits = if level == 0 { 0 } else { (*p as u64) >> (32 - level) };
        Path::from_bits(bits, level)
    }

    fn diameter(&self, theta: &Path) -> f64 {
        self.level_diameter(theta.level())
    }

    fn level_diameter(&self, level: usize) -> f64 {
        2f64.powi(-(level as i32))
    }

    fn level_diameter_sum(&self, _level: usize) -> f64 {
        1.0
    }

    fn sample_uniform<R: RngCore>(&self, theta: &Path, rng: &mut R) -> u32 {
        let (lo, hi) = self.cell_range(theta);
        rng.gen_range(lo..=hi)
    }

    fn point_lanes(&self) -> usize {
        1
    }

    fn write_point(&self, p: &u32, out: &mut Vec<f64>) {
        // u32 → f64 is exact (32 < 53 mantissa bits), so the codec is
        // lossless.
        out.push(f64::from(*p));
    }

    fn read_point(&self, lanes: &[f64]) -> u32 {
        lanes[0] as u32
    }

    fn distance(&self, a: &u32, b: &u32) -> f64 {
        (*a as f64 - *b as f64).abs() / 2f64.powi(32)
    }

    fn max_level(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn locate_is_prefix() {
        let ip = Ipv4Space::new();
        let addr = Ipv4Space::parse_addr("192.168.1.77").unwrap();
        // /8 prefix of 192.x.x.x is 192 = 0b11000000.
        assert_eq!(ip.locate(&addr, 8).bits(), 192);
        // /16 prefix is 192.168.
        assert_eq!(ip.locate(&addr, 16).bits(), (192 << 8) | 168);
        assert_eq!(ip.locate(&addr, 32).bits(), addr as u64);
    }

    #[test]
    fn parse_format_roundtrip() {
        for s in ["0.0.0.0", "255.255.255.255", "10.1.2.3", "172.16.254.1"] {
            let a = Ipv4Space::parse_addr(s).unwrap();
            assert_eq!(Ipv4Space::format_addr(a), s);
        }
        assert!(Ipv4Space::parse_addr("256.0.0.1").is_none());
        assert!(Ipv4Space::parse_addr("1.2.3").is_none());
        assert!(Ipv4Space::parse_addr("1.2.3.4.5").is_none());
    }

    #[test]
    fn cell_range_matches_cidr() {
        let ip = Ipv4Space::new();
        let ten_slash_8 = ip.locate(&Ipv4Space::parse_addr("10.0.0.0").unwrap(), 8);
        let (lo, hi) = ip.cell_range(&ten_slash_8);
        assert_eq!(Ipv4Space::format_addr(lo), "10.0.0.0");
        assert_eq!(Ipv4Space::format_addr(hi), "10.255.255.255");
    }

    #[test]
    fn full_depth_cell_is_single_address() {
        let ip = Ipv4Space::new();
        let addr = 0xC0A8_0101u32;
        let theta = ip.locate(&addr, 32);
        assert_eq!(ip.cell_range(&theta), (addr, addr));
    }

    #[test]
    fn sample_stays_in_block() {
        let ip = Ipv4Space::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let theta = ip.locate(&Ipv4Space::parse_addr("172.16.0.0").unwrap(), 12);
        let (lo, hi) = ip.cell_range(&theta);
        for _ in 0..200 {
            let a = ip.sample_uniform(&theta, &mut rng);
            assert!(a >= lo && a <= hi);
            assert_eq!(ip.locate(&a, 12), theta);
        }
    }

    #[test]
    fn distance_normalised() {
        let ip = Ipv4Space::new();
        assert_eq!(ip.distance(&0, &0), 0.0);
        assert!((ip.distance(&0, &u32::MAX) - 1.0).abs() < 1e-9);
    }
}
