#![warn(missing_docs)]

//! Synthetic stream workloads for the PrivHP experiments.
//!
//! Every utility bound in the paper is parameterised by the skew measure
//! `‖tail_k‖₁`, so the workload suite is organised around controlling it:
//!
//! * [`UniformWorkload`] — the adversarial case for pruning: mass spread
//!   evenly, `‖tail_k‖₁` as large as possible;
//! * [`GaussianMixture`] — realistic multi-modal skew (the motivating
//!   geographic/heatmap workloads);
//! * [`ZipfCells`] — *direct* control of the tail: cell frequencies follow
//!   a Zipf law with exponent `s`; `s = 0` is uniform, large `s` is
//!   extremely skewed;
//! * [`SparseClusters`] — the best case: support on at most `c` tiny cells,
//!   so `‖tail_k‖₁ = 0` whenever `k ≥ c`;
//! * [`ipv4_sessions`] — a synthetic IPv4 traffic mix (a few hot /16s plus
//!   scanner noise) for the networking example.
//!
//! All generators are deterministic given an RNG and produce points in the
//! appropriate domain type.

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A workload that can generate a stream of points of type `P`.
pub trait Workload<P> {
    /// Generates a stream of `n` points.
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<P>;
}

/// Uniform points over `[0,1]^dim`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UniformWorkload {
    /// Dimension of the points.
    pub dim: usize,
}

impl UniformWorkload {
    /// Creates a uniform workload of the given dimension.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim }
    }
}

impl Workload<Vec<f64>> for UniformWorkload {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        (0..n).map(|_| (0..self.dim).map(|_| rng.gen_range(0.0..1.0)).collect()).collect()
    }
}

impl Workload<f64> for UniformWorkload {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        assert_eq!(self.dim, 1, "scalar stream requires dim = 1");
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }
}

/// One component of a [`GaussianMixture`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixtureComponent {
    /// Component centre (one coordinate per dimension, inside `[0,1]^d`).
    pub center: Vec<f64>,
    /// Isotropic standard deviation.
    pub sigma: f64,
    /// Relative weight (normalised internally).
    pub weight: f64,
}

/// A truncated isotropic Gaussian mixture on `[0,1]^dim`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianMixture {
    components: Vec<MixtureComponent>,
    dim: usize,
}

impl GaussianMixture {
    /// Creates a mixture from explicit components.
    ///
    /// # Panics
    /// Panics on empty input, mismatched dimensions, or non-positive
    /// weights/sigmas.
    pub fn new(components: Vec<MixtureComponent>) -> Self {
        assert!(!components.is_empty(), "mixture needs at least one component");
        let dim = components[0].center.len();
        for c in &components {
            assert_eq!(c.center.len(), dim, "component dimension mismatch");
            assert!(c.sigma > 0.0, "sigma must be positive");
            assert!(c.weight > 0.0, "weight must be positive");
        }
        Self { components, dim }
    }

    /// A standard skewed benchmark: three well-separated modes with
    /// weights 0.6 / 0.3 / 0.1 and tight spread, in the given dimension.
    pub fn three_modes(dim: usize) -> Self {
        let centre = |base: f64| (0..dim).map(|i| (base + 0.13 * i as f64) % 1.0).collect();
        Self::new(vec![
            MixtureComponent { center: centre(0.15), sigma: 0.03, weight: 0.6 },
            MixtureComponent { center: centre(0.55), sigma: 0.05, weight: 0.3 },
            MixtureComponent { center: centre(0.85), sigma: 0.02, weight: 0.1 },
        ])
    }

    /// Dimension of generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn sample_gaussian<R: RngCore>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn sample_point<R: RngCore>(&self, rng: &mut R) -> Vec<f64> {
        let total: f64 = self.components.iter().map(|c| c.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut comp = &self.components[0];
        for c in &self.components {
            if pick < c.weight {
                comp = c;
                break;
            }
            pick -= c.weight;
        }
        // Rejection-sample into the cube (tight sigmas make this cheap);
        // fall back to clamping after a bounded number of attempts so a
        // pathological component cannot loop forever.
        for _ in 0..64 {
            let p: Vec<f64> =
                comp.center.iter().map(|&m| m + comp.sigma * Self::sample_gaussian(rng)).collect();
            if p.iter().all(|&x| (0.0..1.0).contains(&x)) {
                return p;
            }
        }
        comp.center
            .iter()
            .map(|&m| (m + comp.sigma * Self::sample_gaussian(rng)).clamp(0.0, 1.0 - f64::EPSILON))
            .collect()
    }
}

impl Workload<Vec<f64>> for GaussianMixture {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample_point(rng)).collect()
    }
}

impl Workload<f64> for GaussianMixture {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        assert_eq!(self.dim, 1, "scalar stream requires dim = 1");
        (0..n).map(|_| self.sample_point(rng)[0]).collect()
    }
}

/// Zipf-distributed mass over the level-`level` cells of `[0,1]^dim`:
/// cell ranked `r` (under a seeded random rank assignment) receives mass
/// `∝ (r+1)^{-exponent}`; points are uniform within their cell.
///
/// This gives *direct* control of `‖tail_k‖₁`: exponent 0 is uniform over
/// cells, larger exponents concentrate mass in few cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfCells {
    /// Decomposition level defining the cells (`2^level` cells).
    pub level: usize,
    /// Zipf exponent `s ≥ 0`.
    pub exponent: f64,
    /// Dimension of the hypercube.
    pub dim: usize,
    /// Seed for the rank-to-cell shuffle (independent of the stream RNG so
    /// the *distribution* is fixed while streams vary).
    pub shuffle_seed: u64,
}

impl ZipfCells {
    /// Creates the workload.
    ///
    /// # Panics
    /// Panics if `level > 20` (dense cell table) or `exponent < 0`.
    pub fn new(level: usize, exponent: f64, dim: usize, shuffle_seed: u64) -> Self {
        assert!(level <= 20, "cell level too deep");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        assert!(dim > 0, "dimension must be positive");
        Self { level, exponent, dim, shuffle_seed }
    }

    /// The cell probability vector (length `2^level`), in cell-index order.
    pub fn cell_probabilities(&self) -> Vec<f64> {
        let cells = 1usize << self.level;
        let mut weights: Vec<f64> =
            (0..cells).map(|r| 1.0 / ((r + 1) as f64).powf(self.exponent)).collect();
        // Deterministic Fisher-Yates shuffle of rank -> cell.
        let mut order: Vec<usize> = (0..cells).collect();
        let mut state = self.shuffle_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for i in (1..cells).rev() {
            state = privhp_dp::rng::mix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let mut out = vec![0.0; cells];
        for (rank, &cell) in order.iter().enumerate() {
            out[cell] = weights[rank];
        }
        out
    }

    fn sample_point<R: RngCore>(&self, probs: &[f64], rng: &mut R) -> Vec<f64> {
        let mut pick = rng.gen_range(0.0..1.0);
        let mut cell = probs.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            if pick < p {
                cell = i;
                break;
            }
            pick -= p;
        }
        // Uniform point in the level-l cell: invert the coordinate-cycling
        // decomposition via the hypercube's bounds.
        let cube = privhp_domain::Hypercube::new(self.dim);
        let theta = privhp_domain::Path::from_bits(cell as u64, self.level);
        use privhp_domain::HierarchicalDomain;
        cube.sample_uniform(&theta, rng)
    }
}

impl Workload<Vec<f64>> for ZipfCells {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        let probs = self.cell_probabilities();
        (0..n).map(|_| self.sample_point(&probs, rng)).collect()
    }
}

impl Workload<f64> for ZipfCells {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        assert_eq!(self.dim, 1, "scalar stream requires dim = 1");
        let probs = self.cell_probabilities();
        (0..n).map(|_| self.sample_point(&probs, rng)[0]).collect()
    }
}

/// Points concentrated in `clusters` tiny intervals of width `width` —
/// the sparse regime where `‖tail_k‖₁ = 0` for `k ≥ clusters`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SparseClusters {
    /// Number of clusters.
    pub clusters: usize,
    /// Width of each cluster.
    pub width: f64,
    /// Seed for cluster placement.
    pub placement_seed: u64,
}

impl SparseClusters {
    /// Creates the workload.
    ///
    /// # Panics
    /// Panics unless `0 < width < 1/clusters` and `clusters ≥ 1`.
    pub fn new(clusters: usize, width: f64, placement_seed: u64) -> Self {
        assert!(clusters >= 1, "need at least one cluster");
        assert!(
            width > 0.0 && width < 1.0 / clusters as f64,
            "width must be positive and clusters must fit disjointly"
        );
        Self { clusters, width, placement_seed }
    }

    /// The (deterministic) cluster left endpoints.
    pub fn centers(&self) -> Vec<f64> {
        // Evenly spaced slots, jittered deterministically by the seed.
        (0..self.clusters)
            .map(|i| {
                let slot = i as f64 / self.clusters as f64;
                let jitter = (privhp_dp::rng::mix64(self.placement_seed ^ i as u64) % 1000) as f64
                    / 1000.0
                    * (1.0 / self.clusters as f64 - self.width);
                slot + jitter
            })
            .collect()
    }
}

impl Workload<f64> for SparseClusters {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let centers = self.centers();
        (0..n)
            .map(|_| {
                let c = centers[rng.gen_range(0..centers.len())];
                (c + rng.gen_range(0.0..self.width)).min(1.0 - f64::EPSILON)
            })
            .collect()
    }
}

/// A non-stationary 1-D stream whose mode drifts linearly across `[0,1]`
/// over the stream's length — the workload for continual-observation
/// experiments, where each checkpoint sees a different distribution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftStream {
    /// Mode position at the start of the stream.
    pub start_mode: f64,
    /// Mode position at the end of the stream.
    pub end_mode: f64,
    /// Gaussian spread around the moving mode.
    pub sigma: f64,
}

impl DriftStream {
    /// Creates a drifting stream.
    ///
    /// # Panics
    /// Panics unless both modes lie in `[0,1]` and `sigma > 0`.
    pub fn new(start_mode: f64, end_mode: f64, sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&start_mode), "start mode outside [0,1]");
        assert!((0.0..=1.0).contains(&end_mode), "end mode outside [0,1]");
        assert!(sigma > 0.0, "sigma must be positive");
        Self { start_mode, end_mode, sigma }
    }

    /// The mode position after a fraction `t ∈ [0,1]` of the stream.
    pub fn mode_at(&self, t: f64) -> f64 {
        self.start_mode + (self.end_mode - self.start_mode) * t.clamp(0.0, 1.0)
    }
}

impl Workload<f64> for DriftStream {
    fn generate<R: RngCore>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mode = self.mode_at(i as f64 / n.max(1) as f64);
                let g = GaussianMixture::sample_gaussian(rng);
                (mode + self.sigma * g).clamp(0.0, 1.0 - f64::EPSILON)
            })
            .collect()
    }
}

/// A synthetic IPv4 traffic mix: `hot_frac` of packets from a handful of
/// busy /16 networks, the rest spread uniformly (scanner noise).
pub fn ipv4_sessions<R: RngCore>(
    n: usize,
    hot_networks: &[(u8, u8)],
    hot_frac: f64,
    rng: &mut R,
) -> Vec<u32> {
    assert!(!hot_networks.is_empty(), "need at least one hot network");
    assert!((0.0..=1.0).contains(&hot_frac), "hot_frac must be a probability");
    (0..n)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < hot_frac {
                let (a, b) = hot_networks[rng.gen_range(0..hot_networks.len())];
                ((a as u32) << 24) | ((b as u32) << 16) | rng.gen_range(0u32..(1 << 16))
            } else {
                rng.gen()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_in_range() {
        let w = UniformWorkload::new(3);
        let pts: Vec<Vec<f64>> = w.generate(500, &mut rng(1));
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| p.len() == 3 && p.iter().all(|&x| (0.0..1.0).contains(&x))));
    }

    #[test]
    fn uniform_scalar_covers_interval() {
        let w = UniformWorkload::new(1);
        let pts: Vec<f64> = w.generate(4_000, &mut rng(2));
        let low = pts.iter().filter(|&&x| x < 0.5).count() as f64 / 4_000.0;
        assert!((low - 0.5).abs() < 0.05);
    }

    #[test]
    fn mixture_respects_weights() {
        let m = GaussianMixture::three_modes(1);
        let pts: Vec<f64> = m.generate(10_000, &mut rng(3));
        assert!(pts.iter().all(|&x| (0.0..1.0).contains(&x)));
        // Mode at 0.15 has weight 0.6; count mass within ±0.1.
        let near_first = pts.iter().filter(|&&x| (x - 0.15).abs() < 0.1).count() as f64 / 10_000.0;
        assert!((near_first - 0.6).abs() < 0.05, "first-mode mass {near_first}");
    }

    #[test]
    fn mixture_2d_points_in_cube() {
        let m = GaussianMixture::three_modes(2);
        let pts: Vec<Vec<f64>> = m.generate(2_000, &mut rng(4));
        assert!(pts.iter().all(|p| p.iter().all(|&x| (0.0..1.0).contains(&x))));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_over_cells() {
        let z = ZipfCells::new(4, 0.0, 1, 9);
        let probs = z.cell_probabilities();
        assert_eq!(probs.len(), 16);
        for &p in &probs {
            assert!((p - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_high_exponent_concentrates() {
        let z = ZipfCells::new(6, 2.0, 1, 9);
        let probs = z.cell_probabilities();
        let max = probs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.5, "top cell should dominate, got {max}");
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_stream_matches_cell_probabilities() {
        let z = ZipfCells::new(3, 1.0, 1, 42);
        let probs = z.cell_probabilities();
        let pts: Vec<f64> = z.generate(20_000, &mut rng(5));
        let mut counts = vec![0.0; 8];
        for x in &pts {
            counts[(x * 8.0) as usize] += 1.0 / 20_000.0;
        }
        for (i, (&p, &c)) in probs.iter().zip(&counts).enumerate() {
            assert!((p - c).abs() < 0.02, "cell {i}: prob {p} vs freq {c}");
        }
    }

    #[test]
    fn sparse_clusters_supported_on_few_cells() {
        let s = SparseClusters::new(4, 0.01, 7);
        let pts: Vec<f64> = s.generate(5_000, &mut rng(6));
        let centers = s.centers();
        for &x in &pts {
            assert!(
                centers.iter().any(|&c| x >= c && x < c + s.width + 1e-12),
                "point {x} outside every cluster"
            );
        }
    }

    #[test]
    fn ipv4_mix_respects_hot_fraction() {
        let hot = [(10u8, 1u8), (192u8, 168u8)];
        let pts = ipv4_sessions(20_000, &hot, 0.8, &mut rng(7));
        let in_hot = pts
            .iter()
            .filter(|&&a| {
                let (x, y) = ((a >> 24) as u8, (a >> 16) as u8);
                hot.contains(&(x, y))
            })
            .count() as f64
            / 20_000.0;
        assert!(in_hot > 0.75 && in_hot < 0.85, "hot fraction {in_hot}");
    }

    #[test]
    #[should_panic(expected = "clusters must fit")]
    fn overlapping_clusters_rejected() {
        let _ = SparseClusters::new(4, 0.3, 1);
    }

    #[test]
    fn drift_stream_moves_its_mode() {
        let d = DriftStream::new(0.2, 0.8, 0.02);
        let pts: Vec<f64> = d.generate(10_000, &mut rng(8));
        let early: f64 = pts[..1_000].iter().sum::<f64>() / 1_000.0;
        let late: f64 = pts[9_000..].iter().sum::<f64>() / 1_000.0;
        assert!((early - 0.23).abs() < 0.05, "early mean {early} should be ~0.2");
        assert!((late - 0.77).abs() < 0.05, "late mean {late} should be ~0.8");
        assert!(pts.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn drift_mode_interpolates() {
        let d = DriftStream::new(0.1, 0.5, 0.01);
        assert!((d.mode_at(0.0) - 0.1).abs() < 1e-12);
        assert!((d.mode_at(0.5) - 0.3).abs() < 1e-12);
        assert!((d.mode_at(1.0) - 0.5).abs() < 1e-12);
        assert!((d.mode_at(2.0) - 0.5).abs() < 1e-12, "clamped past the end");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn drift_rejects_bad_sigma() {
        let _ = DriftStream::new(0.1, 0.9, 0.0);
    }
}
