//! Misra–Gries heavy-hitter summary — the counter-based sketch used by the
//! Biswas et al. comparator (paper §2.1; Lebeda–Tetek's private variant).
//!
//! The paper argues that the hash-based private sketch it adopts has a
//! better error guarantee than counter-based sketches *and* that its error
//! composes with pruning because both are expressed through the tail norm.
//! We implement Misra–Gries to make that comparison empirically (ablation
//! E13 in DESIGN.md): with `m` counters, a query under-estimates by at most
//! `(n − m̂)/(m+1) ≤ n/(m+1)`, where `m̂` is the retained mass — an additive
//! error that does **not** shrink with skew.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A Misra–Gries summary with a fixed number of counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MisraGries {
    counters: HashMap<u64, f64>,
    capacity: usize,
    total_weight: f64,
    decremented: f64,
}

impl MisraGries {
    /// Creates a summary holding at most `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            counters: HashMap::with_capacity(capacity + 1),
            capacity,
            total_weight: 0.0,
            decremented: 0.0,
        }
    }

    /// Number of counters retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total stream weight processed.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Processes one unit-weight arrival of `key`.
    pub fn update(&mut self, key: u64) {
        self.update_weighted(key, 1.0);
    }

    /// Processes a weighted arrival. Weighted updates are decomposed into
    /// the classical increment/decrement dance in one shot.
    pub fn update_weighted(&mut self, key: u64, weight: f64) {
        assert!(weight >= 0.0, "Misra-Gries requires non-negative weights");
        self.total_weight += weight;
        if let Some(c) = self.counters.get_mut(&key) {
            *c += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, weight);
            return;
        }
        // Full table and a new key: decrement all counters by the smallest
        // amount that frees a slot (batched form of the classic algorithm).
        let min = self.counters.values().fold(f64::INFINITY, |acc, &v| acc.min(v));
        let dec = min.min(weight);
        self.decremented += dec;
        for c in self.counters.values_mut() {
            *c -= dec;
        }
        self.counters.retain(|_, c| *c > 1e-12);
        let leftover = weight - dec;
        if leftover > 1e-12 && self.counters.len() < self.capacity {
            self.counters.insert(key, leftover);
        }
    }

    /// Point query (a lower bound on the true count).
    pub fn query(&self, key: u64) -> f64 {
        self.counters.get(&key).copied().unwrap_or(0.0)
    }

    /// The classical error bound: every estimate is within
    /// `total_weight / (capacity + 1)` of the truth from below.
    pub fn error_bound(&self) -> f64 {
        self.total_weight / (self.capacity as f64 + 1.0)
    }

    /// Keys currently retained, largest counter first.
    pub fn heavy_hitters(&self) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self.counters.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Memory footprint in 8-byte words (key + counter per slot).
    pub fn memory_words(&self) -> usize {
        2 * self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::new(10);
        for _ in 0..5 {
            mg.update(1);
        }
        for _ in 0..3 {
            mg.update(2);
        }
        assert_eq!(mg.query(1), 5.0);
        assert_eq!(mg.query(2), 3.0);
        assert_eq!(mg.query(3), 0.0);
    }

    #[test]
    fn never_overestimates() {
        let mut mg = MisraGries::new(4);
        let mut truth = std::collections::HashMap::new();
        for i in 0..1_000u64 {
            let key = (i * i) % 23;
            mg.update(key);
            *truth.entry(key).or_insert(0.0f64) += 1.0;
        }
        for (&k, &t) in &truth {
            assert!(mg.query(k) <= t + 1e-9, "key {k} overestimated");
        }
    }

    #[test]
    fn error_within_classical_bound() {
        let mut mg = MisraGries::new(9);
        let mut truth = std::collections::HashMap::new();
        for i in 0..10_000u64 {
            let key = i % 100;
            mg.update(key);
            *truth.entry(key).or_insert(0.0f64) += 1.0;
        }
        let bound = mg.error_bound();
        for (&k, &t) in &truth {
            assert!(
                t - mg.query(k) <= bound + 1e-9,
                "key {k}: error {} above bound {bound}",
                t - mg.query(k)
            );
        }
    }

    #[test]
    fn finds_heavy_hitter() {
        let mut mg = MisraGries::new(3);
        for i in 0..900u64 {
            mg.update(if i % 3 == 0 { 7 } else { i });
        }
        let hh = mg.heavy_hitters();
        assert_eq!(hh.first().map(|x| x.0), Some(7), "heavy hitter must survive");
    }

    #[test]
    fn weighted_updates() {
        let mut mg = MisraGries::new(2);
        mg.update_weighted(1, 100.0);
        mg.update_weighted(2, 50.0);
        mg.update_weighted(3, 10.0); // evicts by decrementing
        assert!(mg.query(1) > 80.0);
        assert_eq!(mg.total_weight(), 160.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MisraGries::new(0);
    }
}
