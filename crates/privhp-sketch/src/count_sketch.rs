//! The Count Sketch (Charikar–Chen–Farach-Colton), the second hash-based
//! primitive the paper cites (§3.3–3.4, via Pagh–Thorup's private variant).
//!
//! Each row owns a bucket hash `h_i` *and* a sign hash `s_i : keys → {±1}`;
//! an update adds `s_i(x)·c` to bucket `h_i(x)`, and a query returns the
//! **median** of `s_i(x)·C[i][h_i(x)]` across rows. Unlike Count-Min the
//! estimator is unbiased (collisions cancel in expectation), with error
//! governed by the L2 tail rather than the L1 tail.

use serde::{Deserialize, Serialize};

use crate::hash::HashFamily;
use crate::SketchParams;

/// A (non-private) Count Sketch over `u64` keys with `f64` counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountSketch {
    table: Vec<f64>,
    hashes: HashFamily,
    params: SketchParams,
    total_weight: f64,
}

impl CountSketch {
    /// Creates an empty sketch with the given dimensions.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        Self {
            table: vec![0.0; params.cells()],
            hashes: HashFamily::new(params.depth, params.width, seed),
            params,
            total_weight: 0.0,
        }
    }

    /// Dimensions of this sketch.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Sum of all update weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    #[inline]
    fn cell(&self, row: usize, bucket: usize) -> usize {
        row * self.params.width + bucket
    }

    /// Adds `weight` to `key` (signed per row).
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        for row in 0..self.params.depth {
            let b = self.hashes.bucket(row, key);
            let s = self.hashes.sign(row, key) as f64;
            let cell = self.cell(row, b);
            self.table[cell] += s * weight;
        }
        self.total_weight += weight;
    }

    /// Point query: median of signed row estimates.
    pub fn query(&self, key: u64) -> f64 {
        let mut ests: Vec<f64> = (0..self.params.depth)
            .map(|row| {
                let b = self.hashes.bucket(row, key);
                self.hashes.sign(row, key) as f64 * self.table[self.cell(row, b)]
            })
            .collect();
        ests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let m = ests.len();
        if m % 2 == 1 {
            ests[m / 2]
        } else {
            0.5 * (ests[m / 2 - 1] + ests[m / 2])
        }
    }

    /// Adds `noise[i]` to cell `i`; used by the private wrapper (§3.4).
    ///
    /// # Panics
    /// Panics if the noise vector does not cover every cell.
    pub fn add_cellwise_noise(&mut self, noise: &[f64]) {
        assert_eq!(noise.len(), self.table.len(), "noise vector must cover every cell");
        for (cell, n) in self.table.iter_mut().zip(noise) {
            *cell += n;
        }
    }

    /// Memory footprint in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.table.len() + self.params.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queries_zero() {
        let s = CountSketch::new(SketchParams::new(5, 32), 1);
        assert_eq!(s.query(3), 0.0);
    }

    #[test]
    fn exact_on_single_key() {
        let mut s = CountSketch::new(SketchParams::new(5, 32), 2);
        s.update(11, 4.0);
        assert!((s.query(11) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn roughly_unbiased_on_uniform_stream() {
        let mut s = CountSketch::new(SketchParams::new(7, 64), 3);
        for i in 0..2_000u64 {
            s.update(i % 200, 1.0);
        }
        // truth: every key in 0..200 has count 10
        let mean_err: f64 = (0..200u64).map(|k| s.query(k) - 10.0).sum::<f64>() / 200.0;
        assert!(mean_err.abs() < 2.0, "bias {mean_err} too large");
    }

    #[test]
    fn median_robust_to_heavy_hitter() {
        let mut s = CountSketch::new(SketchParams::new(9, 64), 4);
        s.update(0, 100_000.0); // heavy hitter
        for i in 1..100u64 {
            s.update(i, 1.0);
        }
        // Most light keys should still be estimated near 1.
        let good = (1..100u64).filter(|&k| (s.query(k) - 1.0).abs() < 50.0).count();
        assert!(good > 80, "only {good}/99 keys robust to the heavy hitter");
    }

    #[test]
    fn even_depth_median_averages() {
        let mut s = CountSketch::new(SketchParams::new(2, 64), 6);
        s.update(5, 8.0);
        assert!((s.query(5) - 8.0).abs() < 1e-12);
    }
}
