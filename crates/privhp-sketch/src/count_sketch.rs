//! The Count Sketch (Charikar–Chen–Farach-Colton), the second hash-based
//! primitive the paper cites (§3.3–3.4, via Pagh–Thorup's private variant).
//!
//! Each row owns a bucket hash `h_i` *and* a sign hash `s_i : keys → {±1}`;
//! an update adds `s_i(x)·c` to bucket `h_i(x)`, and a query returns the
//! **median** of `s_i(x)·C[i][h_i(x)]` across rows. Unlike Count-Min the
//! estimator is unbiased (collisions cancel in expectation), with error
//! governed by the L2 tail rather than the L1 tail.

use serde::{Deserialize, Serialize};

use crate::hash::HashFamily;
use crate::SketchParams;

/// A (non-private) Count Sketch over `u64` keys with `f64` counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountSketch {
    table: Vec<f64>,
    hashes: HashFamily,
    params: SketchParams,
    total_weight: f64,
}

impl CountSketch {
    /// Creates an empty sketch with the given dimensions.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        Self {
            table: vec![0.0; params.cells()],
            hashes: HashFamily::new(params.depth, params.width, seed),
            params,
            total_weight: 0.0,
        }
    }

    /// Dimensions of this sketch.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Sum of all update weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    #[inline]
    fn cell(&self, row: usize, bucket: usize) -> usize {
        row * self.params.width + bucket
    }

    /// Adds `weight` to `key` (signed per row). Buckets and signs come
    /// from the family's batched double hash — three mixes for the whole
    /// column.
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        let Self { table, hashes, params, .. } = self;
        let width = params.width;
        hashes.for_each_signed_bucket(key, |row, b, sign| {
            table[row * width + b] += sign * weight;
        });
        self.total_weight += weight;
    }

    /// [`Self::update`] with a caller-provided scratch buffer for the row
    /// buckets — the streaming entry point `PrivHpBuilder::ingest` drives
    /// all level sketches through, reusing one buffer across levels.
    #[inline]
    pub fn update_rows(&mut self, key: u64, weight: f64, scratch: &mut Vec<usize>) {
        self.hashes.buckets_into(key, scratch);
        let Self { table, hashes, params, .. } = self;
        let width = params.width;
        for (row, (&b, sign)) in scratch.iter().zip(hashes.signs(key)).enumerate() {
            table[row * width + b] += sign * weight;
        }
        self.total_weight += weight;
    }

    /// Point query: median of signed row estimates.
    pub fn query(&self, key: u64) -> f64 {
        let mut ests: Vec<f64> = Vec::with_capacity(self.params.depth);
        let width = self.params.width;
        self.hashes.for_each_signed_bucket(key, |row, b, sign| {
            ests.push(sign * self.table[row * width + b]);
        });
        Self::median(&mut ests)
    }

    /// [`Self::query`] with a caller-provided scratch buffer for the row
    /// buckets.
    pub fn query_rows(&self, key: u64, scratch: &mut Vec<usize>) -> f64 {
        self.hashes.buckets_into(key, scratch);
        let mut ests: Vec<f64> = scratch
            .iter()
            .zip(self.hashes.signs(key))
            .enumerate()
            .map(|(row, (&b, sign))| sign * self.table[self.cell(row, b)])
            .collect();
        Self::median(&mut ests)
    }

    /// Median of the (unsorted) row estimates.
    fn median(ests: &mut [f64]) -> f64 {
        ests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let m = ests.len();
        if m % 2 == 1 {
            ests[m / 2]
        } else {
            0.5 * (ests[m / 2 - 1] + ests[m / 2])
        }
    }

    /// Adds `noise[i]` to cell `i`; used by the private wrapper (§3.4).
    ///
    /// # Panics
    /// Panics if the noise vector does not cover every cell.
    pub fn add_cellwise_noise(&mut self, noise: &[f64]) {
        assert_eq!(noise.len(), self.table.len(), "noise vector must cover every cell");
        for (cell, n) in self.table.iter_mut().zip(noise) {
            *cell += n;
        }
    }

    /// Memory footprint in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.table.len() + self.params.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queries_zero() {
        let s = CountSketch::new(SketchParams::new(5, 32), 1);
        assert_eq!(s.query(3), 0.0);
    }

    #[test]
    fn exact_on_single_key() {
        let mut s = CountSketch::new(SketchParams::new(5, 32), 2);
        s.update(11, 4.0);
        assert!((s.query(11) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn roughly_unbiased_on_uniform_stream() {
        let mut s = CountSketch::new(SketchParams::new(7, 64), 3);
        for i in 0..2_000u64 {
            s.update(i % 200, 1.0);
        }
        // truth: every key in 0..200 has count 10
        let mean_err: f64 = (0..200u64).map(|k| s.query(k) - 10.0).sum::<f64>() / 200.0;
        assert!(mean_err.abs() < 2.0, "bias {mean_err} too large");
    }

    #[test]
    fn median_robust_to_heavy_hitter() {
        let mut s = CountSketch::new(SketchParams::new(9, 64), 4);
        s.update(0, 100_000.0); // heavy hitter
        for i in 1..100u64 {
            s.update(i, 1.0);
        }
        // Most light keys should still be estimated near 1.
        let good = (1..100u64).filter(|&k| (s.query(k) - 1.0).abs() < 50.0).count();
        assert!(good > 80, "only {good}/99 keys robust to the heavy hitter");
    }

    #[test]
    fn even_depth_median_averages() {
        let mut s = CountSketch::new(SketchParams::new(2, 64), 6);
        s.update(5, 8.0);
        assert!((s.query(5) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn scratch_entry_points_match_plain_update_and_query() {
        // Signed streaming through the scratch buffer must agree cell-for-
        // cell (buckets *and* signs) with the bufferless closure path.
        let p = SketchParams::new(7, 48);
        let mut plain = CountSketch::new(p, 17);
        let mut rows = CountSketch::new(p, 17);
        let mut scratch = Vec::new();
        for i in 0..400u64 {
            let (key, w) = (i % 37, 1.0 + (i % 5) as f64);
            plain.update(key, w);
            rows.update_rows(key, w, &mut scratch);
        }
        assert_eq!(plain.total_weight(), rows.total_weight());
        for key in 0..64u64 {
            assert_eq!(plain.query(key), rows.query(key));
            assert_eq!(plain.query(key), rows.query_rows(key, &mut scratch));
        }
    }
}
