//! The Count Sketch (Charikar–Chen–Farach-Colton), the second hash-based
//! primitive the paper cites (§3.3–3.4, via Pagh–Thorup's private variant).
//!
//! Each row owns a bucket hash `h_i` *and* a sign hash `s_i : keys → {±1}`;
//! an update adds `s_i(x)·c` to bucket `h_i(x)`, and a query returns the
//! **median** of `s_i(x)·C[i][h_i(x)]` across rows. Unlike Count-Min the
//! estimator is unbiased (collisions cancel in expectation), with error
//! governed by the L2 tail rather than the L1 tail.

use serde::{Deserialize, Serialize};

use crate::hash::HashFamily;
use crate::SketchParams;

/// Adds `sign(row, key) · weight` to `key`'s bucket in every row of a
/// borrowed row-major Count-Sketch table.
///
/// This is **the** Count-Sketch update path: [`CountSketch::update`] and
/// the builder's flattened level arena both route through it, so there is
/// exactly one hashing code path for the kind (three mixes per column:
/// base, stride, sign word).
#[inline]
pub fn update_table(table: &mut [f64], hashes: &HashFamily, key: u64, weight: f64) {
    let width = hashes.width();
    hashes.for_each_signed_bucket(key, |row, b, sign| {
        table[row * width + b] += sign * weight;
    });
}

/// Point query (median of signed row estimates) over a borrowed row-major
/// Count-Sketch table — the query twin of [`update_table`].
pub fn query_table(table: &[f64], hashes: &HashFamily, key: u64) -> f64 {
    let width = hashes.width();
    let mut ests: Vec<f64> = Vec::with_capacity(hashes.depth());
    hashes.for_each_signed_bucket(key, |row, b, sign| {
        ests.push(sign * table[row * width + b]);
    });
    median(&mut ests)
}

/// Median of the (unsorted) row estimates.
fn median(ests: &mut [f64]) -> f64 {
    ests.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let m = ests.len();
    if m % 2 == 1 {
        ests[m / 2]
    } else {
        0.5 * (ests[m / 2 - 1] + ests[m / 2])
    }
}

/// A (non-private) Count Sketch over `u64` keys with `f64` counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountSketch {
    table: Vec<f64>,
    hashes: HashFamily,
    params: SketchParams,
    total_weight: f64,
}

impl CountSketch {
    /// Creates an empty sketch with the given dimensions.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        Self {
            table: vec![0.0; params.cells()],
            hashes: HashFamily::new(params.depth, params.width, seed),
            params,
            total_weight: 0.0,
        }
    }

    /// Dimensions of this sketch.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Sum of all update weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Adds `weight` to `key` (signed per row) — routed through the
    /// module-level [`update_table`], the kind's single hashing code path.
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        update_table(&mut self.table, &self.hashes, key, weight);
        self.total_weight += weight;
    }

    /// Point query: median of signed row estimates (via [`query_table`]).
    pub fn query(&self, key: u64) -> f64 {
        query_table(&self.table, &self.hashes, key)
    }

    /// Merges another sketch into this one by elementwise table addition
    /// (sketches are linear, so this equals sketching the concatenated
    /// stream).
    ///
    /// # Panics
    /// Panics unless both sketches share dimensions *and* hash seeds.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(self.params, other.params, "cannot merge sketches of different dimensions");
        assert_eq!(self.hashes, other.hashes, "cannot merge sketches with different hash seeds");
        for (cell, o) in self.table.iter_mut().zip(&other.table) {
            *cell += o;
        }
        self.total_weight += other.total_weight;
    }

    /// Adds `noise[i]` to cell `i`; used by the private wrapper (§3.4).
    ///
    /// # Panics
    /// Panics if the noise vector does not cover every cell.
    pub fn add_cellwise_noise(&mut self, noise: &[f64]) {
        assert_eq!(noise.len(), self.table.len(), "noise vector must cover every cell");
        for (cell, n) in self.table.iter_mut().zip(noise) {
            *cell += n;
        }
    }

    /// Memory footprint in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.table.len() + self.params.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queries_zero() {
        let s = CountSketch::new(SketchParams::new(5, 32), 1);
        assert_eq!(s.query(3), 0.0);
    }

    #[test]
    fn exact_on_single_key() {
        let mut s = CountSketch::new(SketchParams::new(5, 32), 2);
        s.update(11, 4.0);
        assert!((s.query(11) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn roughly_unbiased_on_uniform_stream() {
        let mut s = CountSketch::new(SketchParams::new(7, 64), 3);
        for i in 0..2_000u64 {
            s.update(i % 200, 1.0);
        }
        // truth: every key in 0..200 has count 10
        let mean_err: f64 = (0..200u64).map(|k| s.query(k) - 10.0).sum::<f64>() / 200.0;
        assert!(mean_err.abs() < 2.0, "bias {mean_err} too large");
    }

    #[test]
    fn median_robust_to_heavy_hitter() {
        let mut s = CountSketch::new(SketchParams::new(9, 64), 4);
        s.update(0, 100_000.0); // heavy hitter
        for i in 1..100u64 {
            s.update(i, 1.0);
        }
        // Most light keys should still be estimated near 1.
        let good = (1..100u64).filter(|&k| (s.query(k) - 1.0).abs() < 50.0).count();
        assert!(good > 80, "only {good}/99 keys robust to the heavy hitter");
    }

    #[test]
    fn even_depth_median_averages() {
        let mut s = CountSketch::new(SketchParams::new(2, 64), 6);
        s.update(5, 8.0);
        assert!((s.query(5) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn borrowed_table_helpers_match_owned_entry_points() {
        // The detached-table helpers must agree cell-for-cell (buckets
        // *and* signs) with the owned sketch — arena users ride on them.
        let p = SketchParams::new(7, 48);
        let mut owned = CountSketch::new(p, 17);
        let hashes = HashFamily::new(p.depth, p.width, 17);
        let mut raw = vec![0.0f64; p.cells()];
        for i in 0..400u64 {
            let (key, w) = (i % 37, 1.0 + (i % 5) as f64);
            owned.update(key, w);
            update_table(&mut raw, &hashes, key, w);
        }
        for key in 0..64u64 {
            assert_eq!(owned.query(key), query_table(&raw, &hashes, key));
        }
    }

    #[test]
    fn merge_of_split_stream_equals_one_stream() {
        let p = SketchParams::new(5, 32);
        let mut whole = CountSketch::new(p, 23);
        let mut left = CountSketch::new(p, 23);
        let mut right = CountSketch::new(p, 23);
        for i in 0..500u64 {
            let key = i % 41;
            whole.update(key, 1.0);
            if i % 2 == 0 {
                left.update(key, 1.0)
            } else {
                right.update(key, 1.0)
            }
        }
        left.merge(&right);
        for key in 0..64u64 {
            assert_eq!(left.query(key).to_bits(), whole.query(key).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn merge_rejects_different_dimensions() {
        let mut a = CountSketch::new(SketchParams::new(3, 16), 1);
        let b = CountSketch::new(SketchParams::new(3, 32), 1);
        a.merge(&b);
    }
}
