//! Seeded hash families for sketch rows.
//!
//! Each sketch row `i` owns a hash function `h_i : u64 → [w]`. The family
//! uses *double hashing*: two splitmix64 mixes of the key produce a base
//! `h₁` and an odd stride `h₂`, and row `i`'s 64-bit hash is
//! `h₁ + i·h₂ (mod 2⁶⁴)`, reduced into `[0, width)` by Lemire's
//! multiply-shift. A whole column of row buckets therefore costs two mixes
//! plus one multiply per row — [`HashFamily::buckets`] streams a column
//! from one pair, and the split form ([`HashFamily::hash_pair`] +
//! [`HashFamily::buckets_of_pair`]) lets the builder's chunked ingest
//! hash a whole chunk up front and replay the pairs level-major, so `L·j`
//! sketch-row updates per item never become `L·j` serial mix-probe
//! chains. Lemma 4's error analysis assumes fully random
//! hashing; double hashing from a strong mixer behaves indistinguishably
//! for the stream sizes we target (the classic Kirsch–Mitzenmacher
//! argument), and — as the paper stresses (§3.3) — the *privacy*
//! guarantee is independent of the hash quality, because the oblivious
//! noise in [`crate::private`] does not depend on the data.

use privhp_dp::rng::{mix64, SeedSequence};
use serde::{Deserialize, Serialize};

/// A family of `depth` seeded hash functions into `[0, width)`, all
/// derived from one double-hash pair per key.
///
/// Equality compares the seeds and dimensions — two equal families hash
/// every key identically, which is what mergeable sketches check before
/// adding tables elementwise.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFamily {
    base_seed: u64,
    stride_seed: u64,
    sign_seed: u64,
    depth: usize,
    width: usize,
}

impl HashFamily {
    /// Creates a family of `depth` functions into `[0, width)` from a master
    /// seed.
    pub fn new(depth: usize, width: usize, master_seed: u64) -> Self {
        assert!(depth > 0 && width > 0, "hash family dimensions must be positive");
        let mut seq = SeedSequence::new(master_seed);
        let base_seed = seq.next_seed();
        let stride_seed = seq.next_seed();
        let sign_seed = seq.next_seed();
        Self { base_seed, stride_seed, sign_seed, depth, width }
    }

    /// Number of functions (sketch depth `j`).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Bucket-range width `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The double-hash pair for `key`: base hash and odd stride. Two mixes
    /// cover every row of the family. Public so batched callers (the
    /// builder's level-major chunk pass) can hash a whole chunk up front
    /// and replay the pairs through [`Self::buckets_of_pair`].
    #[inline]
    pub fn hash_pair(&self, key: u64) -> (u64, u64) {
        (mix64(key ^ self.base_seed), mix64(key ^ self.stride_seed) | 1)
    }

    /// Lemire's fast range reduction of a 64-bit hash into `[0, width)`:
    /// unbiased enough for arbitrary widths and avoids the modulo's bias
    /// and latency.
    #[inline]
    fn reduce(&self, h: u64) -> usize {
        // For a power-of-two width Lemire's reduction is exactly the top
        // `log2(width)` bits, so the multiply collapses to a shift (the
        // default widths `4k` are powers of two whenever `k` is); the
        // general multiply-shift covers every other width with the same
        // top-bits semantics.
        if self.width > 1 && self.width.is_power_of_two() {
            (h >> (64 - self.width.trailing_zeros())) as usize
        } else {
            // Covers width == 1 too (always bucket 0) — a 64-bit shift
            // would overflow there.
            (((h as u128) * (self.width as u128)) >> 64) as usize
        }
    }

    /// Hashes `key` with row `row`'s function; returns a bucket in
    /// `[0, width)`. Single-row entry point — identical to element `row`
    /// of [`Self::buckets`].
    #[inline]
    pub fn bucket(&self, row: usize, key: u64) -> usize {
        let (h1, h2) = self.hash_pair(key);
        self.reduce(h1.wrapping_add((row as u64).wrapping_mul(h2)))
    }

    /// Iterates every row's bucket for `key` in row order — the
    /// allocation-free batched form (two mixes up front, one
    /// multiply-shift per row).
    #[inline]
    pub fn buckets(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        self.buckets_of_pair(self.hash_pair(key))
    }

    /// Iterates every row's bucket from an already-computed
    /// [`Self::hash_pair`] — the replay half of the two-phase batched
    /// update (hash a whole chunk, then stream the scattered adds).
    #[inline]
    pub fn buckets_of_pair(&self, (h1, h2): (u64, u64)) -> impl Iterator<Item = usize> + '_ {
        let mut h = h1;
        (0..self.depth).map(move |_| {
            let b = self.reduce(h);
            h = h.wrapping_add(h2);
            b
        })
    }

    /// A ±1 sign for Count Sketch rows, independent of the bucket bits:
    /// bit `row` of a dedicated sign mix (one mix serves 64 rows).
    #[inline]
    pub fn sign(&self, row: usize, key: u64) -> i64 {
        let word = self.sign_word(key, row / 64);
        if (word >> (row % 64)) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// The 64-row sign word `block` for `key` (bit `row % 64` is row
    /// `block·64 + row`'s sign).
    #[inline]
    pub(crate) fn sign_word(&self, key: u64, block: usize) -> u64 {
        mix64(key ^ self.sign_seed ^ (block as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Iterates every row's ±1.0 sign for `key` in row order (one mix per
    /// 64 rows) — the single home of the sign-word refresh logic.
    #[inline]
    pub fn signs(&self, key: u64) -> impl Iterator<Item = f64> + '_ {
        let mut word = self.sign_word(key, 0);
        (0..self.depth).map(move |row| {
            if row > 0 && row % 64 == 0 {
                word = self.sign_word(key, row / 64);
            }
            if (word >> (row % 64)) & 1 == 0 {
                1.0
            } else {
                -1.0
            }
        })
    }

    /// Folds `f(row, bucket, sign)` over every row — the batched form the
    /// Count Sketch uses (signs come from one mix per 64 rows).
    #[inline]
    pub fn for_each_signed_bucket(&self, key: u64, mut f: impl FnMut(usize, usize, f64)) {
        for (row, (b, sign)) in self.buckets(key).zip(self.signs(key)).enumerate() {
            f(row, b, sign);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_in_range() {
        let f = HashFamily::new(5, 37, 123);
        for row in 0..5 {
            for key in 0..1000u64 {
                assert!(f.bucket(row, key) < 37);
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = HashFamily::new(3, 64, 9);
        let b = HashFamily::new(3, 64, 9);
        for row in 0..3 {
            for key in [0u64, 1, 42, u64::MAX] {
                assert_eq!(a.bucket(row, key), b.bucket(row, key));
                assert_eq!(a.sign(row, key), b.sign(row, key));
            }
        }
    }

    #[test]
    fn rows_are_decorrelated() {
        let f = HashFamily::new(2, 1024, 7);
        let collisions = (0..10_000u64).filter(|&k| f.bucket(0, k) == f.bucket(1, k)).count();
        // Expected ~10000/1024 ≈ 10; allow a wide band.
        assert!(collisions < 40, "rows too correlated: {collisions} collisions");
    }

    #[test]
    fn buckets_roughly_uniform() {
        let width = 64;
        let f = HashFamily::new(1, width, 99);
        let n = 64_000u64;
        let mut counts = vec![0usize; width];
        for k in 0..n {
            counts[f.bucket(0, k)] += 1;
        }
        let expected = n as f64 / width as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "bucket {b} count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    fn signs_balanced() {
        let f = HashFamily::new(1, 2, 5);
        let sum: i64 = (0..100_000u64).map(|k| f.sign(0, k)).sum();
        assert!(sum.abs() < 2_000, "signs unbalanced: sum={sum}");
    }

    #[test]
    fn sign_independent_of_bucket() {
        // Correlation between sign and low bucket bit should be near zero.
        let f = HashFamily::new(1, 2, 21);
        let n = 100_000u64;
        let agree = (0..n).filter(|&k| (f.bucket(0, k) == 0) == (f.sign(0, k) == 1)).count();
        let frac = agree as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "sign-bucket correlation {frac}");
    }

    #[test]
    fn width_one_always_buckets_zero() {
        // Regression: the power-of-two shift fast path must not fire for
        // width 1 (a 64-bit shift overflows); every key lands in bucket 0.
        let f = HashFamily::new(3, 1, 11);
        for key in [0u64, 1, 0xFFFF, u64::MAX] {
            for row in 0..3 {
                assert_eq!(f.bucket(row, key), 0);
            }
            assert!(f.buckets(key).all(|b| b == 0));
        }
    }

    #[test]
    fn pair_replay_matches_direct_buckets() {
        // Hashing a chunk up front and replaying the pairs must visit the
        // same buckets as hashing inline — the two-phase batch path.
        let f = HashFamily::new(11, 96, 41);
        for key in [0u64, 7, 0xBEEF, u64::MAX] {
            let pair = f.hash_pair(key);
            let direct: Vec<usize> = f.buckets(key).collect();
            let replayed: Vec<usize> = f.buckets_of_pair(pair).collect();
            assert_eq!(direct, replayed);
        }
    }

    #[test]
    fn equality_tracks_seeds_and_dimensions() {
        assert_eq!(HashFamily::new(3, 64, 9), HashFamily::new(3, 64, 9));
        assert_ne!(HashFamily::new(3, 64, 9), HashFamily::new(3, 64, 10));
        assert_ne!(HashFamily::new(3, 64, 9), HashFamily::new(4, 64, 9));
    }

    #[test]
    fn batched_buckets_match_single_row_entry_point() {
        let f = HashFamily::new(9, 53, 77);
        for key in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let column: Vec<usize> = f.buckets(key).collect();
            assert_eq!(column.len(), 9);
            for (row, &b) in column.iter().enumerate() {
                assert_eq!(b, f.bucket(row, key), "row {row} for key {key}");
            }
        }
    }

    #[test]
    fn signed_fold_matches_single_row_entry_points() {
        let f = HashFamily::new(7, 32, 5);
        for key in [3u64, 99, 0xABCD] {
            let mut rows = Vec::new();
            f.for_each_signed_bucket(key, |row, b, s| rows.push((row, b, s)));
            assert_eq!(rows.len(), 7);
            for (row, b, s) in rows {
                assert_eq!(b, f.bucket(row, key));
                assert_eq!(s as i64, f.sign(row, key));
            }
        }
    }

    #[test]
    fn signs_decorrelated_across_rows() {
        // Consecutive rows read adjacent bits of the sign word; they must
        // still agree only ~half the time over many keys.
        let f = HashFamily::new(2, 2, 31);
        let n = 100_000u64;
        let agree = (0..n).filter(|&k| f.sign(0, k) == f.sign(1, k)).count();
        let frac = agree as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "row-sign correlation {frac}");
    }

    #[test]
    fn deep_families_span_multiple_sign_words() {
        // depth > 64 exercises the per-64-row sign-word refresh in both
        // the single-row and the folded entry points.
        let f = HashFamily::new(130, 16, 8);
        let mut seen = Vec::new();
        f.for_each_signed_bucket(12345, |row, b, s| seen.push((row, b, s)));
        assert_eq!(seen.len(), 130);
        for (row, b, s) in seen {
            assert_eq!(b, f.bucket(row, 12345));
            assert_eq!(s as i64, f.sign(row, 12345));
        }
        let balance: i64 = (0..100_000u64).map(|k| f.sign(100, k)).sum();
        assert!(balance.abs() < 2_000, "row-100 signs unbalanced: {balance}");
    }
}
