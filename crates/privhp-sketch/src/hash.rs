//! Seeded hash families for sketch rows.
//!
//! Each sketch row `i` owns an independent hash function `h_i : u64 → [w]`.
//! Lemma 4's error analysis assumes fully random hashing; in practice a
//! strong 64-bit mixer applied to `key ⊕ seed_i` behaves indistinguishably
//! for the stream sizes we target, and — as the paper stresses (§3.3) — the
//! *privacy* guarantee is independent of the hash quality, because the
//! oblivious noise in [`crate::private`] does not depend on the data.

use privhp_dp::rng::{mix64, SeedSequence};
use serde::{Deserialize, Serialize};

/// A family of `depth` independent seeded hash functions into `[0, width)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashFamily {
    seeds: Vec<u64>,
    width: usize,
}

impl HashFamily {
    /// Creates a family of `depth` functions into `[0, width)` from a master
    /// seed.
    pub fn new(depth: usize, width: usize, master_seed: u64) -> Self {
        assert!(depth > 0 && width > 0, "hash family dimensions must be positive");
        let mut seq = SeedSequence::new(master_seed);
        let seeds = (0..depth).map(|_| seq.next_seed()).collect();
        Self { seeds, width }
    }

    /// Number of functions (sketch depth `j`).
    pub fn depth(&self) -> usize {
        self.seeds.len()
    }

    /// Bucket-range width `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Hashes `key` with row `row`'s function; returns a bucket in
    /// `[0, width)`.
    #[inline]
    pub fn bucket(&self, row: usize, key: u64) -> usize {
        let h = mix64(key ^ self.seeds[row]);
        // Lemire's fast range reduction: unbiased enough for power-of-two or
        // arbitrary widths and avoids the modulo's bias and latency.
        (((h as u128) * (self.width as u128)) >> 64) as usize
    }

    /// A ±1 sign for Count Sketch rows, independent of the bucket bits.
    #[inline]
    pub fn sign(&self, row: usize, key: u64) -> i64 {
        let h = mix64(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.seeds[row].rotate_left(17));
        if h & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_in_range() {
        let f = HashFamily::new(5, 37, 123);
        for row in 0..5 {
            for key in 0..1000u64 {
                assert!(f.bucket(row, key) < 37);
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = HashFamily::new(3, 64, 9);
        let b = HashFamily::new(3, 64, 9);
        for row in 0..3 {
            for key in [0u64, 1, 42, u64::MAX] {
                assert_eq!(a.bucket(row, key), b.bucket(row, key));
                assert_eq!(a.sign(row, key), b.sign(row, key));
            }
        }
    }

    #[test]
    fn rows_are_decorrelated() {
        let f = HashFamily::new(2, 1024, 7);
        let collisions = (0..10_000u64).filter(|&k| f.bucket(0, k) == f.bucket(1, k)).count();
        // Expected ~10000/1024 ≈ 10; allow a wide band.
        assert!(collisions < 40, "rows too correlated: {collisions} collisions");
    }

    #[test]
    fn buckets_roughly_uniform() {
        let width = 64;
        let f = HashFamily::new(1, width, 99);
        let n = 64_000u64;
        let mut counts = vec![0usize; width];
        for k in 0..n {
            counts[f.bucket(0, k)] += 1;
        }
        let expected = n as f64 / width as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "bucket {b} count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    fn signs_balanced() {
        let f = HashFamily::new(1, 2, 5);
        let sum: i64 = (0..100_000u64).map(|k| f.sign(0, k)).sum();
        assert!(sum.abs() < 2_000, "signs unbalanced: sum={sum}");
    }

    #[test]
    fn sign_independent_of_bucket() {
        // Correlation between sign and low bucket bit should be near zero.
        let f = HashFamily::new(1, 2, 21);
        let n = 100_000u64;
        let agree = (0..n).filter(|&k| (f.bucket(0, k) == 0) == (f.sign(0, k) == 1)).count();
        let frac = agree as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "sign-bucket correlation {frac}");
    }
}
