//! Private (oblivious-noise) sketch wrappers — paper §3.4.
//!
//! Sketches are linear maps, so for neighbouring streams `X ~ X'` the sketch
//! difference is the sketch of a single ±1 update, which touches one bucket
//! in each of the `j` rows: the sketch has L1 sensitivity `j`. Releasing
//! `C(X) + Laplace^{j×w}(j/ε)` is therefore ε-DP by Lemma 1 (the noise is
//! sampled *independently of the data* — "oblivious" release).
//!
//! PrivHP initialises each level's sketch with its noise **up front**
//! (Algorithm 1, line 8) so the post-stream structure is already private and
//! everything downstream (GrowPartition) is post-processing.

use privhp_dp::laplace::Laplace;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::count_min::CountMinSketch;
use crate::count_sketch::CountSketch;
use crate::SketchParams;

/// An ε-DP Count-Min Sketch: a [`CountMinSketch`] whose cells were
/// perturbed with i.i.d. `Laplace(j/ε)` noise at construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivateCountMinSketch {
    inner: CountMinSketch,
    epsilon: f64,
    noise_scale: f64,
}

impl PrivateCountMinSketch {
    /// Creates a private sketch: dimensions `params`, privacy `epsilon`,
    /// hash seed `seed`, noise drawn from `rng`.
    pub fn new<R: RngCore>(params: SketchParams, epsilon: f64, seed: u64, rng: &mut R) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let mut inner = CountMinSketch::new(params, seed);
        let scale = params.depth as f64 / epsilon;
        let dist = Laplace::new(scale);
        let noise: Vec<f64> = (0..params.cells()).map(|_| dist.sample(rng)).collect();
        inner.add_cellwise_noise(&noise);
        Self { inner, epsilon, noise_scale: scale }
    }

    /// Privacy level of the release.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Laplace scale applied per cell (`j/ε`).
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Streams an update into the sketch (same as the non-private update;
    /// privacy comes from the oblivious noise already present). Routed
    /// through the kind's single hashing code path.
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        self.inner.update(key, weight);
    }

    /// Noisy point query.
    #[inline]
    pub fn query(&self, key: u64) -> f64 {
        self.inner.query(key)
    }

    /// Dimensions.
    pub fn params(&self) -> SketchParams {
        self.inner.params()
    }

    /// Sum of true update weights (not a private quantity — internal use).
    pub fn total_weight(&self) -> f64 {
        self.inner.total_weight()
    }

    /// Memory footprint in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.inner.memory_words()
    }
}

/// An ε-DP Count Sketch (same oblivious-noise construction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivateCountSketch {
    inner: CountSketch,
    epsilon: f64,
    noise_scale: f64,
}

impl PrivateCountSketch {
    /// Creates a private Count Sketch with `Laplace(j/ε)` cell noise.
    pub fn new<R: RngCore>(params: SketchParams, epsilon: f64, seed: u64, rng: &mut R) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let mut inner = CountSketch::new(params, seed);
        let scale = params.depth as f64 / epsilon;
        let dist = Laplace::new(scale);
        let noise: Vec<f64> = (0..params.cells()).map(|_| dist.sample(rng)).collect();
        inner.add_cellwise_noise(&noise);
        Self { inner, epsilon, noise_scale: scale }
    }

    /// Privacy level of the release.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Laplace scale applied per cell.
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Streams an update (routed through the kind's single hashing code
    /// path).
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        self.inner.update(key, weight);
    }

    /// Noisy point query (median estimator).
    #[inline]
    pub fn query(&self, key: u64) -> f64 {
        self.inner.query(key)
    }

    /// Dimensions.
    pub fn params(&self) -> SketchParams {
        self.inner.params()
    }

    /// Memory footprint in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.inner.memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_dp::rng::rng_from_seed;

    #[test]
    fn noise_scale_is_depth_over_epsilon() {
        let mut rng = rng_from_seed(1);
        let s = PrivateCountMinSketch::new(SketchParams::new(8, 32), 0.5, 7, &mut rng);
        assert!((s.noise_scale() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_concentrate_around_truth() {
        let mut rng = rng_from_seed(2);
        let p = SketchParams::new(10, 128);
        let mut s = PrivateCountMinSketch::new(p, 4.0, 11, &mut rng);
        for _ in 0..1_000 {
            s.update(42, 1.0);
        }
        let est = s.query(42);
        // Noise scale is 2.5 per cell; CMS min over 10 rows biases slightly
        // but the estimate must land near 1000.
        assert!((est - 1_000.0).abs() < 100.0, "estimate {est} too far from 1000");
    }

    #[test]
    fn different_rng_draws_different_noise() {
        let p = SketchParams::new(4, 16);
        let mut r1 = rng_from_seed(3);
        let mut r2 = rng_from_seed(4);
        let a = PrivateCountMinSketch::new(p, 1.0, 5, &mut r1);
        let b = PrivateCountMinSketch::new(p, 1.0, 5, &mut r2);
        assert_ne!(a.query(0), b.query(0), "noise must differ across rng streams");
    }

    #[test]
    fn private_count_sketch_tracks_truth() {
        let mut rng = rng_from_seed(5);
        let p = SketchParams::new(9, 128);
        let mut s = PrivateCountSketch::new(p, 4.0, 13, &mut rng);
        for _ in 0..1_000 {
            s.update(9, 1.0);
        }
        let est = s.query(9);
        assert!((est - 1_000.0).abs() < 100.0, "estimate {est} too far");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let mut rng = rng_from_seed(6);
        let _ = PrivateCountMinSketch::new(SketchParams::new(2, 4), 0.0, 1, &mut rng);
    }

    #[test]
    fn empty_private_sketch_is_pure_noise_with_zero_mean() {
        // Average of many empty-sketch queries should be biased negative for
        // CMS (min of Laplace draws) but bounded by the noise scale.
        let p = SketchParams::new(4, 64);
        let mut rng = rng_from_seed(7);
        let s = PrivateCountMinSketch::new(p, 1.0, 3, &mut rng);
        let mean: f64 = (0..64u64).map(|k| s.query(k)).sum::<f64>() / 64.0;
        // scale = 4, min over 4 rows: mean well within a few scales of 0.
        assert!(mean.abs() < 20.0, "pure-noise mean {mean} implausible");
    }
}
