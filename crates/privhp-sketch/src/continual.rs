//! Continual-observation Count-Min sketch.
//!
//! The continual counterpart of [`crate::private::PrivateCountMinSketch`]
//! (paper §3.1's adaptation remark): every cell is a binary-mechanism
//! counter, so the **whole sequence** of sketch states is ε-DP rather than
//! only the final one.
//!
//! Sensitivity: one stream item touches one cell per row (`j` cells), and
//! within each cell's counter it touches `≤ log T` p-sums; per-p-sum noise
//! `Laplace(j·log T / ε)` therefore makes the full release sequence ε-DP
//! (Lemma 1 + basic composition across rows, as in §3.4 with the extra
//! `log T` factor the continual model charges).

use privhp_dp::continual::ContinualCounter;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::hash::HashFamily;
use crate::SketchParams;

/// A continually-private Count-Min sketch over `u64` keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinualCountMinSketch {
    cells: Vec<ContinualCounter>,
    hashes: HashFamily,
    params: SketchParams,
    epsilon: f64,
    horizon_levels: usize,
}

impl ContinualCountMinSketch {
    /// Creates a continual sketch for a horizon of `2^horizon_levels`
    /// updates at privacy `epsilon` (for the entire state sequence).
    pub fn new(params: SketchParams, epsilon: f64, horizon_levels: usize, seed: u64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        // Each item touches j cells; each cell's counter internally charges
        // log T — give each cell's counter budget ε/j so the row
        // composition lands on ε total.
        let per_cell_epsilon = epsilon / params.depth as f64;
        let cells = (0..params.cells())
            .map(|_| ContinualCounter::new(horizon_levels, per_cell_epsilon))
            .collect();
        Self {
            cells,
            hashes: HashFamily::new(params.depth, params.width, seed),
            params,
            epsilon,
            horizon_levels,
        }
    }

    /// Dimensions of the sketch.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Privacy of the full state sequence.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Horizon `T = 2^levels` per cell.
    pub fn horizon(&self) -> usize {
        1usize << self.horizon_levels
    }

    /// Streams one update of `weight` for `key`.
    pub fn update<R: RngCore>(&mut self, key: u64, weight: f64, rng: &mut R) {
        for row in 0..self.params.depth {
            let b = self.hashes.bucket(row, key);
            let cell = row * self.params.width + b;
            self.cells[cell].update(weight, rng);
        }
    }

    /// Point query at the *current* time: minimum over rows of each row's
    /// continual prefix count.
    pub fn query(&self, key: u64) -> f64 {
        let mut est = f64::INFINITY;
        for row in 0..self.params.depth {
            let b = self.hashes.bucket(row, key);
            let cell = row * self.params.width + b;
            est = est.min(self.cells[cell].query());
        }
        est
    }

    /// Memory footprint in 8-byte words: `O(j·w·log T)`.
    pub fn memory_words(&self) -> usize {
        self.cells.iter().map(|c| c.memory_words()).sum::<usize>() + self.params.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_dp::rng::rng_from_seed;

    #[test]
    fn tracks_heavy_key_throughout_the_stream() {
        let mut rng = rng_from_seed(1);
        let p = SketchParams::new(6, 64);
        let mut s = ContinualCountMinSketch::new(p, 24.0, 12, 7);
        let mut truth = 0.0;
        for i in 0..2_000u64 {
            if i % 2 == 0 {
                s.update(42, 1.0, &mut rng);
                truth += 1.0;
            } else {
                s.update(i, 1.0, &mut rng);
            }
            if i % 500 == 499 {
                let est = s.query(42);
                // Per-cell scale = (12 levels)·(6/24) = 3 per p-sum, ≤12
                // p-sums; plus collisions with the light keys.
                assert!((est - truth).abs() < 120.0, "t={i}: estimate {est} vs truth {truth}");
            }
        }
    }

    #[test]
    fn memory_scales_with_log_horizon_not_horizon() {
        let p = SketchParams::new(4, 16);
        let small = ContinualCountMinSketch::new(p, 1.0, 8, 1).memory_words();
        let large = ContinualCountMinSketch::new(p, 1.0, 16, 1).memory_words();
        assert!(
            large < small * 3,
            "doubling log-horizon must not blow up memory: {small} -> {large}"
        );
    }

    #[test]
    fn query_sequence_is_monotone_ish_for_single_key() {
        // A single repeatedly-updated key should show increasing estimates
        // over time (up to noise).
        let mut rng = rng_from_seed(2);
        let p = SketchParams::new(4, 8);
        let mut s = ContinualCountMinSketch::new(p, 40.0, 10, 3);
        let mut prev = f64::NEG_INFINITY;
        for checkpoint in 1..=8 {
            for _ in 0..100 {
                s.update(5, 1.0, &mut rng);
            }
            let est = s.query(5);
            assert!(
                est > prev - 40.0,
                "estimate collapsed at checkpoint {checkpoint}: {prev} -> {est}"
            );
            prev = est;
        }
        assert!(prev > 500.0, "final estimate {prev} too low for 800 updates");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let _ = ContinualCountMinSketch::new(SketchParams::new(2, 4), 0.0, 4, 1);
    }
}
