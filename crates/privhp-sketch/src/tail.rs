//! `tail_k` utilities — the paper's skew measure.
//!
//! For a frequency vector `v`, `tail_k(v)` is `v` with its `k` largest
//! coordinates set to zero (paper §1.2, §5.2). `‖tail_k(v)‖₁` appears in
//! every utility bound: it is small for skewed inputs and zero for inputs
//! supported on at most `k` cells, which is exactly why top-k pruning is
//! cheap on realistic streams.

/// Returns the indices of the `k` largest coordinates of `v` (ties broken by
/// lower index first, matching a stable sort on descending value).
pub fn top_k_indices(v: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| {
        v[b].partial_cmp(&v[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Returns `tail_k(v)`: a copy of `v` with the `k` largest coordinates set
/// to zero.
pub fn tail_vector(v: &[f64], k: usize) -> Vec<f64> {
    let mut out = v.to_vec();
    for i in top_k_indices(v, k) {
        out[i] = 0.0;
    }
    out
}

/// `‖tail_k(v)‖₁` computed without materialising the tail vector.
///
/// Uses a partial selection: sum of all coordinates minus the sum of the
/// top-k, which is `O(n log k)` with a bounded heap.
pub fn tail_norm_l1(v: &[f64], k: usize) -> f64 {
    if k == 0 {
        return v.iter().map(|x| x.abs()).sum();
    }
    if k >= v.len() {
        return 0.0;
    }
    // Min-heap of the k largest absolute values seen so far.
    let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
    let mut total = 0.0;
    for &x in v {
        let a = x.abs();
        total += a;
        heap.push(std::cmp::Reverse(OrderedF64(a)));
        if heap.len() > k {
            heap.pop();
        }
    }
    let head: f64 = heap.into_iter().map(|r| r.0 .0).sum();
    (total - head).max(0.0)
}

/// Total-order wrapper for non-NaN f64s used in the selection heap.
#[derive(PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_basic() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(top_k_indices(&v, 2), vec![4, 2]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_k_more_than_len() {
        let v = [1.0, 2.0];
        assert_eq!(top_k_indices(&v, 5).len(), 2);
    }

    #[test]
    fn tail_vector_zeroes_top() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0];
        let t = tail_vector(&v, 2);
        assert_eq!(t, vec![3.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tail_norm_matches_vector_form() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for k in 0..=8 {
            let direct: f64 = tail_vector(&v, k).iter().sum();
            assert!((tail_norm_l1(&v, k) - direct).abs() < 1e-12, "mismatch at k={k}");
        }
    }

    #[test]
    fn tail_norm_zero_for_sparse() {
        // A vector supported on 3 cells has zero tail_3.
        let v = [0.0, 7.0, 0.0, 2.0, 0.0, 1.0];
        assert_eq!(tail_norm_l1(&v, 3), 0.0);
    }

    #[test]
    fn tail_norm_monotone_in_k() {
        let v: Vec<f64> = (0..50).map(|i| ((i * 7919) % 101) as f64).collect();
        let mut prev = f64::INFINITY;
        for k in 0..50 {
            let t = tail_norm_l1(&v, k);
            assert!(t <= prev + 1e-12, "tail norm must be non-increasing in k");
            prev = t;
        }
    }

    #[test]
    fn tail_norm_k_zero_is_l1() {
        let v = [1.0, -2.0, 3.0];
        assert!((tail_norm_l1(&v, 0) - 6.0).abs() < 1e-12);
    }
}
