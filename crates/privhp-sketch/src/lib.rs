#![warn(missing_docs)]

//! Sketching substrate for the PrivHP workspace.
//!
//! PrivHP cannot afford exact per-subdomain counters at deep hierarchy
//! levels, so it summarises each level `l > L★` with a *private sketch*
//! (paper §3.3–3.4). This crate provides:
//!
//! * [`hash`] — seeded, decorrelated hash families (splitmix64 mixing) used
//!   by all sketches; the paper's analysis assumes fully random hashing but
//!   its privacy guarantee does not (§3.3), matching our construction;
//! * [`count_min`] — the Count-Min Sketch of Cormode–Muthukrishnan
//!   (paper Figure 1), with the expected-error bound of Lemma 4 exposed as
//!   [`count_min::CountMinSketch::lemma4_error_bound`];
//! * [`count_sketch`] — the median-of-signed-counters Count Sketch, provided
//!   as the alternative hash-based primitive the paper cites (Pagh–Thorup);
//! * [`private`] — oblivious Laplace perturbation wrappers (paper §3.4):
//!   a sketch is linear, neighbouring inputs differ by a ±1 update in each of
//!   `j` rows, so `Laplace(j/ε)` noise per cell gives ε-DP;
//! * [`misra_gries`] — the deterministic counter-based sketch used by the
//!   Biswas et al. comparator (paper §2.1), for the E13 ablation;
//! * [`tail`] — `tail_k` vector utilities (`‖tail_k(v)‖₁`), the skew measure
//!   at the heart of every utility bound in the paper.

pub mod continual;
pub mod count_min;
pub mod count_sketch;
pub mod hash;
pub mod misra_gries;
pub mod private;
pub mod tail;

pub use continual::ContinualCountMinSketch;
pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;
pub use hash::HashFamily;
pub use misra_gries::MisraGries;
pub use private::{PrivateCountMinSketch, PrivateCountSketch};
pub use tail::{tail_norm_l1, tail_vector, top_k_indices};

use serde::{Deserialize, Serialize};

/// Dimensions of a sketch: `depth` rows (`j` in the paper) × `width`
/// buckets per row.
///
/// Paper convention: Lemma 4 analyses a sketch of width `2w`; Theorem 3 sets
/// `w = 2k`. [`SketchParams::for_pruning`] encodes that chain
/// (`width = 4k`, `depth = ⌈log₂ n⌉` per Corollary 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchParams {
    /// Number of rows `j`.
    pub depth: usize,
    /// Number of buckets per row (the paper's `2w`).
    pub width: usize,
}

impl SketchParams {
    /// Creates explicit dimensions.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth > 0, "sketch depth must be positive");
        assert!(width > 0, "sketch width must be positive");
        Self { depth, width }
    }

    /// The Corollary-1 defaults for pruning parameter `k` and stream length
    /// `n`: width `2w` with `w = 2k`, depth `j = ⌈log₂ n⌉`.
    pub fn for_pruning(k: usize, n: usize) -> Self {
        assert!(k > 0, "pruning parameter must be positive");
        let depth = (n.max(2) as f64).log2().ceil() as usize;
        Self::new(depth.max(1), 4 * k)
    }

    /// Number of cells (`depth × width`) — the memory footprint in words.
    pub fn cells(&self) -> usize {
        self.depth * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_for_pruning_follow_corollary1() {
        let p = SketchParams::for_pruning(8, 1 << 16);
        assert_eq!(p.width, 32, "width = 4k");
        assert_eq!(p.depth, 16, "depth = log2 n");
        assert_eq!(p.cells(), 512);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = SketchParams::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = SketchParams::new(4, 0);
    }
}
