//! The Count-Min Sketch (paper Figure 1, Lemma 4).
//!
//! A `j × w` matrix of counters with one hash function per row. An update
//! `(x, c)` adds `c` to bucket `h_i(x)` in every row `i`; a point query
//! returns the **minimum** across rows, filtering collisions with
//! high-frequency items. For non-negative updates the estimate never
//! underestimates; Lemma 4 bounds the expected overestimate by
//! `‖tail_w(v)‖₁/w + 2^{-j+1}‖v‖₁/w` for a sketch of width `2w` and depth
//! `j` (exposed as [`CountMinSketch::lemma4_error_bound`]).

use serde::{Deserialize, Serialize};

use crate::hash::HashFamily;
use crate::SketchParams;

/// Adds `weight` to `key`'s bucket in every row of a borrowed row-major
/// Count-Min table (`table[row · width + bucket]`, `width` from `hashes`).
///
/// This is **the** Count-Min update path: [`CountMinSketch::update`] and
/// the builder's flattened level arena both route through it, so there is
/// exactly one hashing code path for the kind.
#[inline]
pub fn update_table(table: &mut [f64], hashes: &HashFamily, key: u64, weight: f64) {
    let width = hashes.width();
    for (row, b) in hashes.buckets(key).enumerate() {
        table[row * width + b] += weight;
    }
}

/// Streams a whole chunk of precomputed [`HashFamily::hash_pair`]s into a
/// borrowed row-major Count-Min table — the level-major batched update.
///
/// Monomorphised over the common power-of-two widths (the defaults are
/// `4k`), so the per-row work compiles to shift/mask/add/store with no
/// bounds checks and a fully unrolled row loop; buckets are identical to
/// [`update_table`] pair-for-pair (the pow-2 reduction is the hash's top
/// bits, and the `& (W−1)` mask — a no-op for in-range values — is what
/// proves the index bound to the compiler). Items interleave four at a
/// time, so a cell's adds may land in a different order than key-by-key
/// updates — identical for the exact unit-weight accumulations the
/// builder streams (and any dyadic weight), unordered-sum semantics
/// otherwise.
pub fn update_table_pairs(
    table: &mut [f64],
    hashes: &HashFamily,
    pairs: &[(u64, u64)],
    weight: f64,
) {
    match hashes.width() {
        16 => add_pairs_pow2::<16>(table, pairs, weight),
        32 => add_pairs_pow2::<32>(table, pairs, weight),
        64 => add_pairs_pow2::<64>(table, pairs, weight),
        128 => add_pairs_pow2::<128>(table, pairs, weight),
        256 => add_pairs_pow2::<256>(table, pairs, weight),
        width => {
            for &pair in pairs {
                for (row, b) in hashes.buckets_of_pair(pair).enumerate() {
                    table[row * width + b] += weight;
                }
            }
        }
    }
}

/// [`update_table_pairs`] specialised to a compile-time power-of-two
/// width, shaped as an array-of-lanes kernel: `LANES` independent
/// walk/add chains live in fixed `[u64; LANES]` arrays and every pass is
/// a lane-uniform loop, which fills the pipeline bubbles a single chain's
/// add-to-store latency leaves and gives the compiler loops it can unroll
/// or vectorise without reassociating anything. Lane order preserves item
/// order, so each cell's adds land in the same order as the old
/// tuple-interleaved code (4 lanes measured best on the dev machine;
/// 8 regresses on register pressure).
#[inline]
fn add_pairs_pow2<const W: usize>(table: &mut [f64], pairs: &[(u64, u64)], weight: f64) {
    const LANES: usize = 4;
    let shift = 64 - W.trailing_zeros();
    let mask = W - 1;
    let mut h = [0u64; LANES];
    let mut step = [0u64; LANES];
    let mut chunks = pairs.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        for (lane, &(h1, h2)) in chunk.iter().enumerate() {
            h[lane] = h1;
            step[lane] = h2;
        }
        for row in table.chunks_exact_mut(W) {
            for &hl in &h {
                row[(hl >> shift) as usize & mask] += weight;
            }
            for (hl, &sl) in h.iter_mut().zip(&step) {
                *hl = hl.wrapping_add(sl);
            }
        }
    }
    for &(h1, h2) in chunks.remainder() {
        let mut hr = h1;
        for row in table.chunks_exact_mut(W) {
            row[(hr >> shift) as usize & mask] += weight;
            hr = hr.wrapping_add(h2);
        }
    }
}

/// Point query (minimum across rows) over a borrowed row-major Count-Min
/// table — the query twin of [`update_table`].
#[inline]
pub fn query_table(table: &[f64], hashes: &HashFamily, key: u64) -> f64 {
    let width = hashes.width();
    let mut est = f64::INFINITY;
    for (row, b) in hashes.buckets(key).enumerate() {
        est = est.min(table[row * width + b]);
    }
    est
}

/// A (non-private) Count-Min Sketch over `u64` keys with `f64` counters.
///
/// ```
/// use privhp_sketch::{CountMinSketch, SketchParams};
///
/// let mut sketch = CountMinSketch::new(SketchParams::new(8, 64), 42);
/// for _ in 0..100 { sketch.update(7, 1.0); }
/// sketch.update(9, 3.0);
/// assert!(sketch.query(7) >= 100.0);       // never underestimates
/// assert!(sketch.query(9) >= 3.0);
/// assert_eq!(sketch.total_weight(), 103.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    table: Vec<f64>,
    hashes: HashFamily,
    params: SketchParams,
    total_weight: f64,
}

impl CountMinSketch {
    /// Creates an empty sketch with the given dimensions; `seed` derives the
    /// row hash functions.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        Self {
            table: vec![0.0; params.cells()],
            hashes: HashFamily::new(params.depth, params.width, seed),
            params,
            total_weight: 0.0,
        }
    }

    /// Dimensions of this sketch.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Sum of all update weights (`‖v‖₁` for non-negative streams).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Adds `weight` to `key`'s bucket in every row (Figure 1) — routed
    /// through the module-level [`update_table`], the kind's single
    /// hashing code path (two mixes for the whole column).
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        update_table(&mut self.table, &self.hashes, key, weight);
        self.total_weight += weight;
    }

    /// Point query: minimum across rows (via [`query_table`]).
    #[inline]
    pub fn query(&self, key: u64) -> f64 {
        query_table(&self.table, &self.hashes, key)
    }

    /// Merges another sketch into this one by elementwise table addition.
    /// Sketches are linear maps, so the merge of two sketches over disjoint
    /// streams equals the sketch of the concatenated stream — the substrate
    /// of sharded/distributed ingest.
    ///
    /// # Panics
    /// Panics unless both sketches share dimensions *and* hash seeds
    /// (tables of differently-hashed sketches are not addable).
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(self.params, other.params, "cannot merge sketches of different dimensions");
        assert_eq!(self.hashes, other.hashes, "cannot merge sketches with different hash seeds");
        for (cell, o) in self.table.iter_mut().zip(&other.table) {
            *cell += o;
        }
        self.total_weight += other.total_weight;
    }

    /// Adds `noise[i]` to cell `i`; used by the private wrapper (§3.4).
    ///
    /// # Panics
    /// Panics if `noise.len() != cells()` — a short noise vector would leave
    /// some cells unprotected.
    pub fn add_cellwise_noise(&mut self, noise: &[f64]) {
        assert_eq!(noise.len(), self.table.len(), "noise vector must cover every cell");
        for (cell, n) in self.table.iter_mut().zip(noise) {
            *cell += n;
        }
    }

    /// The Lemma-4 expected-error bound for a query against a frequency
    /// vector with the given tail mass, evaluated for *this* sketch's
    /// dimensions. `self.params.width` is the paper's `2w`, so `w =
    /// width/2`.
    ///
    /// `E[v̂_x − v_x] ≤ ‖tail_w(v)‖₁/w + 2^{-j+1}‖v‖₁/w`.
    ///
    /// `2^{-(j-1)}` is computed with integer-exponent arithmetic
    /// (`powi`, exact for every reachable depth) rather than a
    /// transcendental `powf` — `exp_sketch_error` evaluates this per cell.
    pub fn lemma4_error_bound(&self, tail_w_norm: f64, total_l1: f64) -> f64 {
        let w = (self.params.width / 2).max(1) as f64;
        let j = self.params.depth as i32;
        tail_w_norm / w + 2f64.powi(1 - j) * total_l1 / w
    }

    /// Memory footprint in 8-byte words (counters + hash seeds).
    pub fn memory_words(&self) -> usize {
        self.table.len() + self.params.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SketchParams {
        SketchParams::new(8, 64)
    }

    #[test]
    fn empty_sketch_queries_zero() {
        let s = CountMinSketch::new(params(), 1);
        assert_eq!(s.query(42), 0.0);
        assert_eq!(s.total_weight(), 0.0);
    }

    #[test]
    fn exact_on_single_key() {
        let mut s = CountMinSketch::new(params(), 2);
        s.update(7, 5.0);
        s.update(7, 2.5);
        assert!((s.query(7) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn never_underestimates_nonnegative_stream() {
        let mut s = CountMinSketch::new(SketchParams::new(4, 16), 3);
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u64 {
            let key = i % 40;
            s.update(key, 1.0);
            *truth.entry(key).or_insert(0.0) += 1.0;
        }
        for (&key, &t) in &truth {
            assert!(
                s.query(key) >= t - 1e-9,
                "key {key}: estimate {} below truth {t}",
                s.query(key)
            );
        }
    }

    #[test]
    fn error_within_lemma4_bound_on_zipf() {
        // Zipf-ish vector: frequency of key i ∝ 1/(i+1).
        let p = SketchParams::new(10, 64); // w = 32
        let mut s = CountMinSketch::new(p, 4);
        let universe = 2_000u64;
        let mut v = vec![0.0f64; universe as usize];
        for i in 0..universe {
            let f = (1_000.0 / (i + 1) as f64).ceil();
            v[i as usize] = f;
            s.update(i, f);
        }
        let total: f64 = v.iter().sum();
        let tail = crate::tail::tail_norm_l1(&v, 32);
        let bound = s.lemma4_error_bound(tail, total);
        // Lemma 4 bounds the expectation; check the mean error over keys.
        let mean_err: f64 =
            (0..universe).map(|i| s.query(i) - v[i as usize]).sum::<f64>() / universe as f64;
        assert!(mean_err <= bound * 1.5, "mean error {mean_err} exceeds Lemma 4 bound {bound}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = CountMinSketch::new(params(), 9);
        let mut b = CountMinSketch::new(params(), 9);
        for i in 0..100u64 {
            a.update(i, 1.0);
            b.update(i, 1.0);
        }
        for i in 0..100u64 {
            assert_eq!(a.query(i), b.query(i));
        }
    }

    #[test]
    fn cellwise_noise_shifts_estimates() {
        let p = SketchParams::new(2, 4);
        let mut s = CountMinSketch::new(p, 5);
        s.update(1, 3.0);
        let noise = vec![1.0; p.cells()];
        s.add_cellwise_noise(&noise);
        assert!((s.query(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "noise vector must cover every cell")]
    fn short_noise_vector_rejected() {
        let mut s = CountMinSketch::new(SketchParams::new(2, 4), 5);
        s.add_cellwise_noise(&[0.0; 3]);
    }

    #[test]
    fn memory_words_counts_cells() {
        let s = CountMinSketch::new(SketchParams::new(3, 10), 1);
        assert_eq!(s.memory_words(), 33);
    }

    #[test]
    fn borrowed_table_helpers_match_owned_entry_points() {
        // update_table/query_table over a detached table must stay
        // bucket-for-bucket identical to the owned sketch — they *are* the
        // owned paths, and this pins the arena users to them.
        let p = SketchParams::new(9, 48);
        let mut owned = CountMinSketch::new(p, 31);
        let hashes = HashFamily::new(p.depth, p.width, 31);
        let mut raw = vec![0.0f64; p.cells()];
        for i in 0..400u64 {
            let (key, w) = (i % 37, 1.0 + (i % 5) as f64);
            owned.update(key, w);
            update_table(&mut raw, &hashes, key, w);
        }
        for key in 0..64u64 {
            assert_eq!(owned.query(key), query_table(&raw, &hashes, key));
        }
    }

    #[test]
    fn batched_pairs_match_key_by_key_updates() {
        // The monomorphised chunk path must land every add in exactly the
        // bucket update_table picks — across pow-2 widths (specialised),
        // a pow-2 width without a specialisation arm, and an odd width
        // (generic Lemire fallback).
        for width in [16usize, 64, 512, 48] {
            let depth = 11;
            let hashes = HashFamily::new(depth, width, 97);
            // 301 keys: not a multiple of the lane count, so the kernel's
            // remainder loop is exercised on every width.
            let keys: Vec<u64> = (0..301).map(|i| i * 0x9E37 + 5).collect();
            let mut one_by_one = vec![0.0f64; depth * width];
            for &k in &keys {
                update_table(&mut one_by_one, &hashes, k, 1.5);
            }
            let pairs: Vec<(u64, u64)> = keys.iter().map(|&k| hashes.hash_pair(k)).collect();
            let mut chunked = vec![0.0f64; depth * width];
            update_table_pairs(&mut chunked, &hashes, &pairs, 1.5);
            for (i, (a, b)) in one_by_one.iter().zip(&chunked).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "width {width}: cell {i} diverged");
            }
        }
    }

    #[test]
    fn merge_of_split_stream_equals_one_stream() {
        let p = SketchParams::new(6, 32);
        let mut whole = CountMinSketch::new(p, 13);
        let mut left = CountMinSketch::new(p, 13);
        let mut right = CountMinSketch::new(p, 13);
        for i in 0..500u64 {
            let (key, w) = (i % 29, 1.0 + (i % 3) as f64);
            whole.update(key, w);
            if i < 200 {
                left.update(key, w)
            } else {
                right.update(key, w)
            }
        }
        left.merge(&right);
        assert_eq!(left.total_weight().to_bits(), whole.total_weight().to_bits());
        for key in 0..64u64 {
            assert_eq!(left.query(key).to_bits(), whole.query(key).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "different hash seeds")]
    fn merge_rejects_different_seeds() {
        let p = SketchParams::new(4, 16);
        let mut a = CountMinSketch::new(p, 1);
        let b = CountMinSketch::new(p, 2);
        a.merge(&b);
    }
}
