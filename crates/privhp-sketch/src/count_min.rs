//! The Count-Min Sketch (paper Figure 1, Lemma 4).
//!
//! A `j × w` matrix of counters with one hash function per row. An update
//! `(x, c)` adds `c` to bucket `h_i(x)` in every row `i`; a point query
//! returns the **minimum** across rows, filtering collisions with
//! high-frequency items. For non-negative updates the estimate never
//! underestimates; Lemma 4 bounds the expected overestimate by
//! `‖tail_w(v)‖₁/w + 2^{-j+1}‖v‖₁/w` for a sketch of width `2w` and depth
//! `j` (exposed as [`CountMinSketch::lemma4_error_bound`]).

use serde::{Deserialize, Serialize};

use crate::hash::HashFamily;
use crate::SketchParams;

/// A (non-private) Count-Min Sketch over `u64` keys with `f64` counters.
///
/// ```
/// use privhp_sketch::{CountMinSketch, SketchParams};
///
/// let mut sketch = CountMinSketch::new(SketchParams::new(8, 64), 42);
/// for _ in 0..100 { sketch.update(7, 1.0); }
/// sketch.update(9, 3.0);
/// assert!(sketch.query(7) >= 100.0);       // never underestimates
/// assert!(sketch.query(9) >= 3.0);
/// assert_eq!(sketch.total_weight(), 103.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    table: Vec<f64>,
    hashes: HashFamily,
    params: SketchParams,
    total_weight: f64,
}

impl CountMinSketch {
    /// Creates an empty sketch with the given dimensions; `seed` derives the
    /// row hash functions.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        Self {
            table: vec![0.0; params.cells()],
            hashes: HashFamily::new(params.depth, params.width, seed),
            params,
            total_weight: 0.0,
        }
    }

    /// Dimensions of this sketch.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Sum of all update weights (`‖v‖₁` for non-negative streams).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    #[inline]
    fn cell(&self, row: usize, bucket: usize) -> usize {
        row * self.params.width + bucket
    }

    /// Adds `weight` to `key`'s bucket in every row (Figure 1). Row
    /// buckets come from the family's batched double hash — two mixes for
    /// the whole column.
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        let Self { table, hashes, params, .. } = self;
        for (row, b) in table.chunks_exact_mut(params.width).zip(hashes.buckets(key)) {
            row[b] += weight;
        }
        self.total_weight += weight;
    }

    /// [`Self::update`] with a caller-provided scratch buffer for the row
    /// buckets — the streaming entry point `PrivHpBuilder::ingest` drives
    /// all level sketches through, reusing one buffer across levels.
    #[inline]
    pub fn update_rows(&mut self, key: u64, weight: f64, scratch: &mut Vec<usize>) {
        self.hashes.buckets_into(key, scratch);
        let Self { table, params, .. } = self;
        for (row, &b) in scratch.iter().enumerate() {
            table[row * params.width + b] += weight;
        }
        self.total_weight += weight;
    }

    /// Point query: minimum across rows.
    #[inline]
    pub fn query(&self, key: u64) -> f64 {
        let mut est = f64::INFINITY;
        for (row, b) in self.hashes.buckets(key).enumerate() {
            est = est.min(self.table[self.cell(row, b)]);
        }
        est
    }

    /// [`Self::query`] with a caller-provided scratch buffer.
    #[inline]
    pub fn query_rows(&self, key: u64, scratch: &mut Vec<usize>) -> f64 {
        self.hashes.buckets_into(key, scratch);
        let mut est = f64::INFINITY;
        for (row, &b) in scratch.iter().enumerate() {
            est = est.min(self.table[self.cell(row, b)]);
        }
        est
    }

    /// Adds `noise[i]` to cell `i`; used by the private wrapper (§3.4).
    ///
    /// # Panics
    /// Panics if `noise.len() != cells()` — a short noise vector would leave
    /// some cells unprotected.
    pub fn add_cellwise_noise(&mut self, noise: &[f64]) {
        assert_eq!(noise.len(), self.table.len(), "noise vector must cover every cell");
        for (cell, n) in self.table.iter_mut().zip(noise) {
            *cell += n;
        }
    }

    /// The Lemma-4 expected-error bound for a query against a frequency
    /// vector with the given tail mass, evaluated for *this* sketch's
    /// dimensions. `self.params.width` is the paper's `2w`, so `w =
    /// width/2`.
    ///
    /// `E[v̂_x − v_x] ≤ ‖tail_w(v)‖₁/w + 2^{-j+1}‖v‖₁/w`.
    ///
    /// `2^{-(j-1)}` is computed with integer-exponent arithmetic
    /// (`powi`, exact for every reachable depth) rather than a
    /// transcendental `powf` — `exp_sketch_error` evaluates this per cell.
    pub fn lemma4_error_bound(&self, tail_w_norm: f64, total_l1: f64) -> f64 {
        let w = (self.params.width / 2).max(1) as f64;
        let j = self.params.depth as i32;
        tail_w_norm / w + 2f64.powi(1 - j) * total_l1 / w
    }

    /// Memory footprint in 8-byte words (counters + hash seeds).
    pub fn memory_words(&self) -> usize {
        self.table.len() + self.params.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SketchParams {
        SketchParams::new(8, 64)
    }

    #[test]
    fn empty_sketch_queries_zero() {
        let s = CountMinSketch::new(params(), 1);
        assert_eq!(s.query(42), 0.0);
        assert_eq!(s.total_weight(), 0.0);
    }

    #[test]
    fn exact_on_single_key() {
        let mut s = CountMinSketch::new(params(), 2);
        s.update(7, 5.0);
        s.update(7, 2.5);
        assert!((s.query(7) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn never_underestimates_nonnegative_stream() {
        let mut s = CountMinSketch::new(SketchParams::new(4, 16), 3);
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u64 {
            let key = i % 40;
            s.update(key, 1.0);
            *truth.entry(key).or_insert(0.0) += 1.0;
        }
        for (&key, &t) in &truth {
            assert!(
                s.query(key) >= t - 1e-9,
                "key {key}: estimate {} below truth {t}",
                s.query(key)
            );
        }
    }

    #[test]
    fn error_within_lemma4_bound_on_zipf() {
        // Zipf-ish vector: frequency of key i ∝ 1/(i+1).
        let p = SketchParams::new(10, 64); // w = 32
        let mut s = CountMinSketch::new(p, 4);
        let universe = 2_000u64;
        let mut v = vec![0.0f64; universe as usize];
        for i in 0..universe {
            let f = (1_000.0 / (i + 1) as f64).ceil();
            v[i as usize] = f;
            s.update(i, f);
        }
        let total: f64 = v.iter().sum();
        let tail = crate::tail::tail_norm_l1(&v, 32);
        let bound = s.lemma4_error_bound(tail, total);
        // Lemma 4 bounds the expectation; check the mean error over keys.
        let mean_err: f64 =
            (0..universe).map(|i| s.query(i) - v[i as usize]).sum::<f64>() / universe as f64;
        assert!(mean_err <= bound * 1.5, "mean error {mean_err} exceeds Lemma 4 bound {bound}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = CountMinSketch::new(params(), 9);
        let mut b = CountMinSketch::new(params(), 9);
        for i in 0..100u64 {
            a.update(i, 1.0);
            b.update(i, 1.0);
        }
        for i in 0..100u64 {
            assert_eq!(a.query(i), b.query(i));
        }
    }

    #[test]
    fn cellwise_noise_shifts_estimates() {
        let p = SketchParams::new(2, 4);
        let mut s = CountMinSketch::new(p, 5);
        s.update(1, 3.0);
        let noise = vec![1.0; p.cells()];
        s.add_cellwise_noise(&noise);
        assert!((s.query(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "noise vector must cover every cell")]
    fn short_noise_vector_rejected() {
        let mut s = CountMinSketch::new(SketchParams::new(2, 4), 5);
        s.add_cellwise_noise(&[0.0; 3]);
    }

    #[test]
    fn memory_words_counts_cells() {
        let s = CountMinSketch::new(SketchParams::new(3, 10), 1);
        assert_eq!(s.memory_words(), 33);
    }

    #[test]
    fn scratch_entry_points_match_plain_update_and_query() {
        // update_rows/query_rows must stay bucket-for-bucket identical to
        // the bufferless paths — they share the double-hash family, and
        // this pins them together if the hash scheme ever changes.
        let p = SketchParams::new(9, 48);
        let mut plain = CountMinSketch::new(p, 31);
        let mut rows = CountMinSketch::new(p, 31);
        let mut scratch = Vec::new();
        for i in 0..400u64 {
            let (key, w) = (i % 37, 1.0 + (i % 5) as f64);
            plain.update(key, w);
            rows.update_rows(key, w, &mut scratch);
        }
        assert_eq!(plain.total_weight(), rows.total_weight());
        for key in 0..64u64 {
            assert_eq!(plain.query(key), rows.query(key));
            assert_eq!(plain.query(key), rows.query_rows(key, &mut scratch));
        }
    }
}
